//! Distributed locks with lazy-release-consistent grants.
//!
//! Each lock has a static manager (`lock % nprocs`).  Requests go to the
//! manager, which forwards them to the last process it sent the token
//! towards; holders chain at most one successor, forming a distributed
//! queue (the TreadMarks algorithm).  A grant carries the interval records
//! the requester lacks — this is where LRC piggybacks consistency
//! information on synchronization (paper §3.1).
//!
//! Interval boundaries: a *remote* acquire closes the current interval
//! before requesting (the acquire begins a new interval whose stamp must
//! reflect the merged knowledge); an unlock always closes the current
//! interval (the release point that orders prior accesses before any
//! future acquirer).  Re-acquiring a cached token creates no interval —
//! there is no remote synchronization to order against, and program order
//! already covers local accesses.

use crossbeam::channel::bounded;
use cvm_vclock::{ProcId, VClock};

use crate::msg::Msg;
use crate::node::{LockLocal, LockMgr, NodeCore};
use crate::pages::Node;
use crate::simtime::OverheadCat;

impl NodeCore {
    fn lock_local(&mut self, lock: u32) -> &mut LockLocal {
        let is_mgr = self.manager_of(lock) == self.proc;
        self.locks.entry(lock).or_insert_with(|| LockLocal {
            // The manager starts out holding every token it manages.
            have_token: is_mgr,
            ..LockLocal::default()
        })
    }

    fn lock_mgr(&mut self, lock: u32) -> &mut LockMgr {
        debug_assert_eq!(self.manager_of(lock), self.proc);
        let me = self.proc;
        self.lock_mgr.entry(lock).or_insert(LockMgr { last: me })
    }
}

/// Application-thread `lock()`.
pub(crate) fn app_lock(node: &Node, lock: u32) {
    let mut st = node.state.lock();
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    // Recording/replaying runs disable token caching: a cached-token
    // reacquire bypasses the manager and therefore the schedule, which
    // would leave the recorded grant order an incomplete account of the
    // critical-section order (and replay unable to reproduce it exactly).
    let cache_ok = !st.cfg.record_sync && st.cfg.replay.is_none();
    {
        let l = st.lock_local(lock);
        assert!(!l.held, "recursive lock({lock})");
        if l.have_token && cache_ok {
            l.held = true;
            st.stats.locks_local += 1;
            if st.cfg.trace {
                // A cached-token reacquire pairs with our own release:
                // program order already covers it.
                st.trace
                    .push(cvm_race::trace::TraceEvent::Acquire { lock, from: None });
            }
            return;
        }
    }
    st.stats.locks_remote += 1;
    // Remote acquire: interval boundary (close now; reopen at grant, after
    // the merge).
    st.close_interval(&node.sender);
    let (tx, rx) = bounded(1);
    st.lock_local(lock).waiter = Some(tx);
    let me = st.proc;
    let vc = st.vc.clone();
    let mgr = st.manager_of(lock);
    if mgr == me {
        mgr_handle_req(&mut st, node, lock, me, vc);
    } else {
        let msg = Msg::LockReq {
            lock,
            requester: me,
            vc,
        };
        st.send_msg(&node.sender, mgr, &msg);
    }
    drop(st);
    rx.recv().expect("lock grant lost");
}

/// Application-thread `unlock()`.
pub(crate) fn app_unlock(node: &Node, lock: u32) {
    let mut st = node.state.lock();
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    {
        let l = st.lock_local(lock);
        assert!(l.held, "unlock({lock}) without holding it");
        l.held = false;
    }
    // Release point: close the interval so its record is available to the
    // next acquirer, and snapshot the released knowledge — a later grant
    // must not carry anything newer (happens-before-1 orders the acquirer
    // after the release, not after the grant).
    st.close_interval(&node.sender);
    st.open_interval();
    if st.cfg.trace {
        st.trace.push(cvm_race::trace::TraceEvent::Release { lock });
        let idx = (st.trace.len() - 1) as u32;
        st.trace_last_release.insert(lock, idx);
    }
    let release_vc = st.vc.clone();
    st.lock_local(lock).release_vc = Some(release_vc);
    if let Some((succ, vc)) = st.lock_local(lock).successor.take() {
        grant(&mut st, node, lock, succ, &vc);
    }
}

/// Manager-side request handling, including replay gating (§6.1).
pub(crate) fn mgr_handle_req(
    st: &mut NodeCore,
    node: &Node,
    lock: u32,
    requester: ProcId,
    vc: VClock,
) {
    if let Some(cursor) = &st.replay {
        if let Some(expected) = cursor.expected(lock) {
            if expected != requester {
                // Ahead of its recorded turn: hold it back.
                st.replay_pending
                    .entry(lock)
                    .or_default()
                    .push((requester, vc));
                return;
            }
        }
    }
    forward(st, node, lock, requester, vc);
    // Forwarding may unblock held-back requests in recorded order.
    loop {
        let expected = match &st.replay {
            Some(cursor) => cursor.expected(lock),
            None => None,
        };
        let Some(expected) = expected else { break };
        let Some(pending) = st.replay_pending.get_mut(&lock) else {
            break;
        };
        let Some(pos) = pending.iter().position(|(p, _)| *p == expected) else {
            break;
        };
        let (p, pvc) = pending.remove(pos);
        forward(st, node, lock, p, pvc);
    }
}

fn forward(st: &mut NodeCore, node: &Node, lock: u32, requester: ProcId, vc: VClock) {
    if st.cfg.record_sync {
        st.sched_rec.record(lock, requester);
    }
    if let Some(cursor) = &mut st.replay {
        if cursor.expected(lock) == Some(requester) {
            cursor.advance(lock);
        }
    }
    let last = {
        let mgr = st.lock_mgr(lock);
        let last = mgr.last;
        mgr.last = requester;
        last
    };
    // `last == requester` happens when the tail re-requests a token it
    // still caches (recording/replay runs disable the local fast path):
    // the forward goes back to the requester, which self-grants.
    if last == st.proc {
        handle_fwd(st, node, lock, requester, vc);
    } else {
        let msg = Msg::LockFwd {
            lock,
            requester,
            vc,
        };
        st.send_msg(&node.sender, last, &msg);
    }
}

/// A forwarded request arriving at the (believed) token holder.
pub(crate) fn handle_fwd(st: &mut NodeCore, node: &Node, lock: u32, requester: ProcId, vc: VClock) {
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    let can_grant = {
        let l = st.lock_local(lock);
        l.have_token && !l.held && l.successor.is_none()
    };
    if can_grant {
        grant(st, node, lock, requester, &vc);
    } else {
        let l = st.lock_local(lock);
        assert!(
            l.successor.is_none(),
            "lock {lock}: second successor queued at one node"
        );
        l.successor = Some((requester, vc));
    }
}

fn grant(st: &mut NodeCore, node: &Node, lock: u32, to: ProcId, to_vc: &VClock) {
    let release_vc = {
        let l = st.lock_local(lock);
        debug_assert!(l.have_token && !l.held);
        l.have_token = false;
        l.release_vc.clone()
    };
    // No release yet (the manager's pristine token): the acquire imposes
    // no ordering and carries no consistency information.
    let vc = release_vc.unwrap_or_else(|| VClock::new(st.cfg.nprocs));
    let records = st.records_between(to_vc, &vc);
    // Trace pairing: which of our Release events this grant hands over
    // (None for a pristine token).
    let trace_from = if st.cfg.trace {
        st.trace_last_release.get(&lock).map(|&idx| (st.proc, idx))
    } else {
        None
    };
    let msg = Msg::LockGrant {
        lock,
        records,
        vc,
        trace_from,
    };
    st.send_msg(&node.sender, to, &msg);
}

/// A grant arriving at a blocked requester.
pub(crate) fn handle_grant(
    st: &mut NodeCore,
    lock: u32,
    records: Vec<std::sync::Arc<cvm_race::Interval>>,
    vc: VClock,
    trace_from: Option<(ProcId, u32)>,
) {
    st.apply_records(records, &vc);
    st.open_interval();
    if st.cfg.trace {
        st.trace.push(cvm_race::trace::TraceEvent::Acquire {
            lock,
            from: trace_from,
        });
    }
    let waiter = {
        let l = st.lock_local(lock);
        l.have_token = true;
        l.held = true;
        l.waiter.take()
    };
    let tx = waiter.expect("grant without a waiting acquirer");
    let _ = tx.send(());
}
