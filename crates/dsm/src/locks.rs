//! Distributed locks with lazy-release-consistent grants.
//!
//! Each lock has a static manager (`lock % nprocs`).  Requests go to the
//! manager, which forwards them to the last process it sent the token
//! towards; holders chain at most one successor, forming a distributed
//! queue (the TreadMarks algorithm).  A grant carries the interval records
//! the requester lacks — this is where LRC piggybacks consistency
//! information on synchronization (paper §3.1).
//!
//! Interval boundaries: a *remote* acquire closes the current interval
//! before requesting (the acquire begins a new interval whose stamp must
//! reflect the merged knowledge); an unlock always closes the current
//! interval (the release point that orders prior accesses before any
//! future acquirer).  Re-acquiring a cached token creates no interval —
//! there is no remote synchronization to order against, and program order
//! already covers local accesses.

use crossbeam::channel::bounded;
use cvm_vclock::{ProcId, VClock};

use crate::error::DsmError;
use crate::fault;
use crate::msg::Msg;
use crate::node::{LockLocal, LockMgr, NodeCore};
use crate::pages::Node;
use crate::simtime::OverheadCat;

impl NodeCore {
    fn lock_local(&mut self, lock: u32) -> &mut LockLocal {
        let is_mgr = self.manager_of(lock) == self.proc;
        self.locks.entry(lock).or_insert_with(|| LockLocal {
            // The manager starts out holding every token it manages.
            have_token: is_mgr,
            ..LockLocal::default()
        })
    }

    fn lock_mgr(&mut self, lock: u32) -> &mut LockMgr {
        debug_assert_eq!(self.manager_of(lock), self.proc);
        let me = self.proc;
        self.lock_mgr.entry(lock).or_insert(LockMgr { last: me })
    }
}

/// Application-thread `lock()`.
pub(crate) fn app_lock(node: &Node, lock: u32) {
    let mut st = node.state.lock();
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    // Recording/replaying runs disable token caching: a cached-token
    // reacquire bypasses the manager and therefore the schedule, which
    // would leave the recorded grant order an incomplete account of the
    // critical-section order (and replay unable to reproduce it exactly).
    let cache_ok = !st.cfg.record_sync && st.cfg.replay.is_none();
    {
        let l = st.lock_local(lock);
        assert!(!l.held, "recursive lock({lock})");
        if l.have_token && cache_ok {
            l.held = true;
            st.stats.locks_local += 1;
            if st.cfg.trace {
                // A cached-token reacquire pairs with our own release:
                // program order already covers it.
                st.trace
                    .push(cvm_race::trace::TraceEvent::Acquire { lock, from: None });
            }
            return;
        }
    }
    st.stats.locks_remote += 1;
    let me = st.proc;
    let deadline = st.cfg.op_deadline;
    // Remote acquire: interval boundary (close now; reopen at grant, after
    // the merge).
    let r = st.close_interval(&node.sender);
    fault::check(node, me, r);
    let (tx, rx) = bounded(1);
    st.lock_local(lock).waiter = Some(tx);
    let vc = st.vc.clone();
    let mgr = st.manager_of(lock);
    let r = if mgr == me {
        mgr_handle_req(&mut st, node, lock, me, vc)
    } else {
        let msg = Msg::LockReq {
            lock,
            requester: me,
            vc,
        };
        st.send_msg(&node.sender, mgr, &msg)
    };
    fault::check(node, me, r);
    drop(st);
    fault::await_signal(node, &rx, deadline, me, "lock grant");
}

/// Application-thread `unlock()`.
pub(crate) fn app_unlock(node: &Node, lock: u32) {
    let mut st = node.state.lock();
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    {
        let l = st.lock_local(lock);
        assert!(l.held, "unlock({lock}) without holding it");
        l.held = false;
    }
    let me = st.proc;
    // Release point: close the interval so its record is available to the
    // next acquirer, and snapshot the released knowledge — a later grant
    // must not carry anything newer (happens-before-1 orders the acquirer
    // after the release, not after the grant).
    let r = st.close_interval(&node.sender);
    fault::check(node, me, r);
    st.open_interval();
    if st.cfg.trace {
        st.trace.push(cvm_race::trace::TraceEvent::Release { lock });
        let idx = (st.trace.len() - 1) as u32;
        st.trace_last_release.insert(lock, idx);
    }
    let release_vc = st.vc.clone();
    st.lock_local(lock).release_vc = Some(release_vc);
    if let Some((succ, vc)) = st.lock_local(lock).successor.take() {
        let r = grant(&mut st, node, lock, succ, &vc);
        fault::check(node, me, r);
    }
}

/// Manager-side request handling, including replay gating (§6.1).
pub(crate) fn mgr_handle_req(
    st: &mut NodeCore,
    node: &Node,
    lock: u32,
    requester: ProcId,
    vc: VClock,
) -> Result<(), DsmError> {
    if let Some(cursor) = &st.replay {
        if let Some(expected) = cursor.expected(lock) {
            if expected != requester {
                // Ahead of its recorded turn: hold it back.
                st.replay_pending
                    .entry(lock)
                    .or_default()
                    .push((requester, vc));
                return Ok(());
            }
        }
    }
    forward(st, node, lock, requester, vc)?;
    // Forwarding may unblock held-back requests in recorded order.
    loop {
        let expected = match &st.replay {
            Some(cursor) => cursor.expected(lock),
            None => None,
        };
        let Some(expected) = expected else { break };
        let Some(pending) = st.replay_pending.get_mut(&lock) else {
            break;
        };
        let Some(pos) = pending.iter().position(|(p, _)| *p == expected) else {
            break;
        };
        let (p, pvc) = pending.remove(pos);
        if pending.is_empty() {
            // Drop drained queues: the barrier-cut snapshot asserts no
            // replay holds are live, and a stale empty entry would trip it.
            st.replay_pending.remove(&lock);
        }
        forward(st, node, lock, p, pvc)?;
    }
    Ok(())
}

fn forward(
    st: &mut NodeCore,
    node: &Node,
    lock: u32,
    requester: ProcId,
    vc: VClock,
) -> Result<(), DsmError> {
    if st.cfg.record_sync {
        st.sched_rec.record(lock, requester);
    }
    if let Some(cursor) = &mut st.replay {
        if cursor.expected(lock) == Some(requester) {
            cursor.advance(lock);
        }
    }
    let last = {
        let mgr = st.lock_mgr(lock);
        let last = mgr.last;
        mgr.last = requester;
        last
    };
    // `last == requester` happens when the tail re-requests a token it
    // still caches (recording/replay runs disable the local fast path):
    // the forward goes back to the requester, which self-grants.
    if last == st.proc {
        handle_fwd(st, node, lock, requester, vc)
    } else {
        let msg = Msg::LockFwd {
            lock,
            requester,
            vc,
        };
        st.send_msg(&node.sender, last, &msg)
    }
}

/// A forwarded request arriving at the (believed) token holder.
pub(crate) fn handle_fwd(
    st: &mut NodeCore,
    node: &Node,
    lock: u32,
    requester: ProcId,
    vc: VClock,
) -> Result<(), DsmError> {
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.lock_handling);
    let can_grant = {
        let l = st.lock_local(lock);
        l.have_token && !l.held && l.successor.is_none()
    };
    if can_grant {
        grant(st, node, lock, requester, &vc)
    } else {
        let l = st.lock_local(lock);
        if l.successor.is_some() {
            return Err(DsmError::Protocol {
                context: "second lock successor queued at one node",
            });
        }
        l.successor = Some((requester, vc));
        Ok(())
    }
}

fn grant(
    st: &mut NodeCore,
    node: &Node,
    lock: u32,
    to: ProcId,
    to_vc: &VClock,
) -> Result<(), DsmError> {
    let release_vc = {
        let l = st.lock_local(lock);
        debug_assert!(l.have_token && !l.held);
        l.have_token = false;
        l.release_vc.clone()
    };
    // No release yet (the manager's pristine token): the acquire imposes
    // no ordering and carries no consistency information.
    let vc = release_vc.unwrap_or_else(|| VClock::new(st.cfg.nprocs));
    let records = st.records_between(to_vc, &vc);
    // Trace pairing: which of our Release events this grant hands over
    // (None for a pristine token).
    let trace_from = if st.cfg.trace {
        st.trace_last_release.get(&lock).map(|&idx| (st.proc, idx))
    } else {
        None
    };
    let msg = Msg::LockGrant {
        lock,
        records,
        vc,
        trace_from,
    };
    st.send_msg(&node.sender, to, &msg)
}

/// A grant arriving at a blocked requester.
pub(crate) fn handle_grant(
    st: &mut NodeCore,
    lock: u32,
    records: Vec<std::sync::Arc<cvm_race::Interval>>,
    vc: VClock,
    trace_from: Option<(ProcId, u32)>,
) -> Result<(), DsmError> {
    st.apply_records(records, &vc);
    st.open_interval();
    if st.cfg.trace {
        st.trace.push(cvm_race::trace::TraceEvent::Acquire {
            lock,
            from: trace_from,
        });
    }
    let waiter = {
        let l = st.lock_local(lock);
        l.have_token = true;
        l.held = true;
        l.waiter.take()
    };
    let Some(tx) = waiter else {
        return Err(DsmError::Protocol {
            context: "lock grant without a waiting acquirer",
        });
    };
    let _ = tx.send(());
    // Grant records are the only retained-state growth between barriers;
    // meter them against the budget here.
    st.check_budget()
}

/// Reacts to a peer declared dead by the reliability layer: any lock we
/// manage whose token was last forwarded toward the dead peer is
/// reclaimed at the manager (the paper's CVM left recovery to the
/// application; here the manager re-arms so surviving requesters get a
/// grant instead of waiting on a corpse), and successor chains pointing
/// at the dead peer are dropped.  Queued successors that the reclaimed
/// token can now serve are granted immediately.
pub(crate) fn handle_peer_death(
    st: &mut NodeCore,
    node: &Node,
    peer: ProcId,
) -> Result<(), DsmError> {
    let me = st.proc;
    let reclaimed: Vec<u32> = st
        .lock_mgr
        .iter()
        .filter(|(_, m)| m.last == peer)
        .map(|(&l, _)| l)
        .collect();
    for lock in &reclaimed {
        if let Some(m) = st.lock_mgr.get_mut(lock) {
            m.last = me;
        }
        st.lock_local(*lock).have_token = true;
    }
    let chained: Vec<u32> = st.locks.keys().copied().collect();
    for lock in chained {
        let l = st.lock_local(lock);
        if l.successor.as_ref().is_some_and(|(s, _)| *s == peer) {
            l.successor = None;
        }
        let can_grant = l.have_token && !l.held && l.successor.is_some();
        if can_grant {
            if let Some((succ, vc)) = st.lock_local(lock).successor.take() {
                grant(st, node, lock, succ, &vc)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cvm_net::wire::Wire;
    use cvm_net::{NetConfig, Network};
    use parking_lot::Mutex;

    use super::*;
    use crate::config::DsmConfig;
    use crate::fault::ClusterCtl;

    fn manager_node(nprocs: usize) -> (Node, Vec<cvm_net::Endpoint>) {
        let (eps, _) = Network::new(nprocs, NetConfig::default());
        let node = Node {
            state: Mutex::new(NodeCore::new(DsmConfig::new(nprocs), ProcId(0))),
            sender: eps[0].sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        (node, eps)
    }

    fn recv_msg(ep: &cvm_net::Endpoint) -> Msg {
        let pkt = ep.recv().expect("delivery");
        Msg::from_bytes(&pkt.payload).expect("decodes")
    }

    #[test]
    fn dead_holder_token_is_reclaimed_and_regranted() {
        // P0 manages lock 0; P1 acquires it, dies holding it; P2's request
        // must then be served from the reclaimed token, not queue forever
        // behind the corpse.
        let (node, eps) = manager_node(3);
        let mut st = node.state.lock();
        let vc = VClock::new(3);
        mgr_handle_req(&mut st, &node, 0, ProcId(1), vc.clone()).unwrap();
        assert!(matches!(recv_msg(&eps[1]), Msg::LockGrant { lock: 0, .. }));
        assert_eq!(st.lock_mgr[&0].last, ProcId(1));
        assert!(!st.locks[&0].have_token, "token left with P1");

        handle_peer_death(&mut st, &node, ProcId(1)).unwrap();
        assert_eq!(st.lock_mgr[&0].last, ProcId(0), "manager re-armed");
        assert!(st.locks[&0].have_token, "token reclaimed");

        mgr_handle_req(&mut st, &node, 0, ProcId(2), vc).unwrap();
        assert!(matches!(recv_msg(&eps[2]), Msg::LockGrant { lock: 0, .. }));
        assert_eq!(st.lock_mgr[&0].last, ProcId(2));
    }

    #[test]
    fn successor_chain_to_dead_peer_is_dropped() {
        // P0 holds the lock with P1 chained as successor; P1 dies before
        // the release, so the chain entry must evaporate (a release would
        // otherwise grant into the void and strand the token).
        let (node, _eps) = manager_node(3);
        let mut st = node.state.lock();
        st.lock_local(0).held = true;
        handle_fwd(&mut st, &node, 0, ProcId(1), VClock::new(3)).unwrap();
        assert!(st.locks[&0].successor.is_some());

        handle_peer_death(&mut st, &node, ProcId(1)).unwrap();
        assert!(st.locks[&0].successor.is_none(), "dead successor dropped");
        assert!(st.locks[&0].held, "our own hold is untouched");
    }

    #[test]
    fn queued_survivor_is_granted_when_holder_dies() {
        // The reclaimed token immediately serves a surviving successor
        // queued at the manager (P2 asked while P1 held the token; P1's
        // death must not orphan P2's request).
        let (node, eps) = manager_node(3);
        let mut st = node.state.lock();
        let vc = VClock::new(3);
        mgr_handle_req(&mut st, &node, 0, ProcId(1), vc.clone()).unwrap();
        assert!(matches!(recv_msg(&eps[1]), Msg::LockGrant { lock: 0, .. }));
        // P2's request forwards to P1 (the believed holder) — simulate the
        // in-flight request by chaining P2 at the manager as if P1 had
        // forwarded the token back before dying.
        st.lock_local(0).successor = Some((ProcId(2), vc));

        handle_peer_death(&mut st, &node, ProcId(1)).unwrap();
        assert!(
            matches!(recv_msg(&eps[2]), Msg::LockGrant { lock: 0, .. }),
            "reclaimed token must serve the queued survivor"
        );
        assert!(!st.locks[&0].have_token, "token handed to P2");
    }
}
