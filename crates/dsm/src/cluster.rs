//! Cluster construction, the service loop, and run orchestration.

use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

use cvm_net::wire::Wire;
use cvm_net::{Endpoint, NetError, Network, ReliabilityStats};
use cvm_page::SharedAlloc;
use cvm_vclock::ProcId;
use parking_lot::Mutex;

use crate::barrier::BarrierMaster;
use crate::checkpoint::CheckpointStore;
use crate::config::{DsmConfig, FailoverPolicy, RecoveryPolicy};
use crate::error::{DsmError, RunError};
use crate::fault::{ClusterCtl, DsmUnwind, SERVICE_POLL};
use crate::handle::ProcHandle;
use crate::msg::Msg;
use crate::node::NodeCore;
use crate::pages::Node;
use crate::replay::ReplayCursor;
use crate::report::{NodeReport, RecoveryStats, ResourceStats, RunReport};

/// Builder/runner for simulated CVM clusters.
///
/// A run proceeds in three phases, mirroring how the original programs were
/// structured:
///
/// 1. **setup** — a closure allocates named shared segments (every process
///    sees the same deterministic addresses) and returns the application's
///    address bundle;
/// 2. **parallel execution** — one application thread per process runs the
///    body against its [`ProcHandle`], while one service thread per node
///    handles protocol messages;
/// 3. **teardown** — service threads stop, per-node state is collected into
///    a [`RunReport`].
pub struct Cluster;

impl Cluster {
    /// Runs `body` on `cfg.nprocs` simulated processes.
    ///
    /// `setup` allocates shared data; its return value is passed (shared)
    /// to every process body.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] when any node fails mid-run — a scripted kill
    /// or partition, a peer declared dead by the reliability layer, an
    /// operation deadline expiry, or a protocol invariant violation.  The
    /// surviving nodes drain first, so the error carries partial statistics.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, if allocation exceeds the
    /// shared segment, or if an application thread panics with a genuine
    /// application panic (assertion failures propagate).
    pub fn run<S, F>(
        cfg: DsmConfig,
        setup: impl FnOnce(&mut SharedAlloc) -> S,
        body: F,
    ) -> Result<RunReport, RunError>
    where
        S: Sync,
        F: Fn(&ProcHandle, &S) + Sync,
    {
        cfg.validate();
        let started = Instant::now();
        let nprocs = cfg.nprocs;

        // Shared allocation happens exactly once: addresses are a pure
        // function of the allocation sequence, so restarted attempts reuse
        // the same address bundle (page *contents* come from the images).
        let mut alloc = SharedAlloc::new(cfg.geometry, cfg.shared_capacity);
        let app_state = setup(&mut alloc);
        let segments = alloc.into_map();

        let store: Option<Arc<CheckpointStore>> = cfg
            .checkpointing()
            .then(|| Arc::new(CheckpointStore::with_retention(cfg.ckpt_retain, nprocs)));
        let retries = match cfg.recovery {
            RecoveryPolicy::Abort => 0,
            RecoveryPolicy::Recover { max_attempts } => u64::from(max_attempts),
        };
        let mut plan = cfg.net_loss.clone();
        let backoff_seed = plan.as_ref().map_or(0, |p| p.seed);
        let mut recoveries = 0u64;
        let mut epochs_replayed = 0u64;
        let mut failovers = 0u64;
        let mut backoff_waits = 0u64;
        let mut partitions_healed = 0u64;
        let mut stale_msgs_fenced = 0u64;
        let mut quorum_losses = 0u64;
        let mut rejoin_restores = 0u64;
        // The barrier-master seat, carried across attempts: proc 0 until a
        // failover moves it to the lowest-numbered survivor.
        let mut master = ProcId(0);
        // The seat's monotone term: bumped on every re-seating, stamped
        // into every master-originated message, and fenced by receivers —
        // an old master reappearing across a healed partition speaks with
        // a stale term and cannot drive detection.
        let mut seat_term = 0u64;
        loop {
            let mut attempt_cfg = cfg.clone();
            attempt_cfg.net_loss = plan.clone();
            // Every recovery attempt starts with a handoff round: the
            // (possibly re-seated) master announces the seat and the resume
            // epoch, and holds the epoch loop until every survivor agrees.
            let announce = recoveries > 0 && nprocs > 1;
            let result = run_attempt(
                &attempt_cfg,
                &app_state,
                &body,
                segments.clone(),
                store.as_ref(),
                started,
                master,
                seat_term,
                announce,
            );
            // Partition/fencing telemetry accumulates across attempts: a
            // failed attempt's fences and heals are part of the run's
            // story even though its report is discarded.  (Heals are
            // accounted per attempt outcome below — in-engine for an
            // attempt that ran to its end, at the strip for a retried
            // one — so a window is never counted twice.)
            {
                let rec = match &result {
                    Ok(r) => &r.recovery,
                    Err(e) => &e.partial.recovery,
                };
                stale_msgs_fenced += rec.stale_msgs_fenced;
                rejoin_restores += rec.rejoin_restores;
                let will_retry = match &result {
                    Ok(_) => false,
                    Err(e) => {
                        store.is_some()
                            && recoveries < retries
                            && matches!(e.error, DsmError::NodeFailed { .. })
                    }
                };
                if !will_retry {
                    let rel = match &result {
                        Ok(r) => r.reliability.as_ref(),
                        Err(e) => e.partial.reliability.as_ref(),
                    };
                    partitions_healed += rel.map_or(0, |r| r.partitions_healed);
                }
            }
            if let Err(e) = &result {
                if matches!(e.error, DsmError::QuorumLost { .. }) {
                    quorum_losses += 1;
                }
            }
            let fill = |stats: &mut RecoveryStats| {
                if let Some(s) = &store {
                    stats.checkpoints_taken = s.checkpoints_taken();
                    stats.bytes_snapshotted = s.bytes_snapshotted();
                }
                stats.recoveries = recoveries;
                stats.epochs_replayed = epochs_replayed;
                stats.failovers = failovers;
                stats.backoff_waits = backoff_waits;
                stats.partitions_healed = partitions_healed;
                stats.stale_msgs_fenced = stale_msgs_fenced;
                stats.quorum_losses = quorum_losses;
                stats.rejoin_restores = rejoin_restores;
            };
            match result {
                Ok(mut report) => {
                    fill(&mut report.recovery);
                    return Ok(report);
                }
                Err(mut err) => {
                    let retryable = store.is_some()
                        && recoveries < retries
                        && matches!(err.error, DsmError::NodeFailed { .. });
                    if !retryable {
                        fill(&mut err.partial.recovery);
                        return Err(err);
                    }
                    recoveries += 1;
                    let s = store.as_ref().expect("retryable requires a store");
                    // Drop any partial (inconsistent) cut the failed
                    // attempt deposited before rolling back.
                    let resume = s.last_complete_epoch(nprocs).unwrap_or(0);
                    s.prune_above(resume);
                    epochs_replayed += err.partial.barriers().saturating_sub(resume);
                    if let DsmError::NodeFailed { proc } = err.error {
                        // The master itself died — or the failed attempt's
                        // plan scripted a partition against the master's
                        // interface.  In the latter case *which* side's
                        // retransmits exhaust first (and hence which
                        // `NodeFailed` wins the failure cell) is a
                        // wall-clock race, while the master's connectivity
                        // is equally suspect either way; succession must
                        // not depend on that race, so any master-side cut
                        // re-seats deterministically.
                        let master_cut = attempt_cfg.net_loss.as_ref().is_some_and(|p| {
                            p.events.iter().any(|e| {
                                matches!(e, cvm_net::FaultEvent::Partition { node, .. }
                                    if *node == master)
                            })
                        });
                        if (ProcId(proc) == master || master_cut)
                            && nprocs > 1
                            && cfg.failover == FailoverPolicy::Succession
                        {
                            // Deterministic succession: the seat moves to
                            // the lowest-numbered node that is not the
                            // deposed master (it is still resurrected from
                            // its image, as a worker).
                            let deposed = master;
                            master = (0..nprocs as u16)
                                .map(ProcId)
                                .find(|p| *p != deposed)
                                .expect("nprocs > 1 has a survivor");
                            failovers += 1;
                            // Re-seating opens a new term; the old seat's
                            // messages are fenced from here on.
                            seat_term += 1;
                        }
                    }
                    // The scripted kill fired; its replacement node must
                    // not be killed again.  Transient partition windows
                    // are healed by the time the next attempt starts (the
                    // backoff pause outlasts the scripted glitch), so they
                    // come out of the plan too — counted as heals.
                    // Permanent faults (heal-less partitions, loss) stay.
                    if let Some(p) = plan.as_mut() {
                        partitions_healed += p
                            .events
                            .iter()
                            .filter(|e| {
                                matches!(
                                    e,
                                    cvm_net::FaultEvent::Partition {
                                        heal_at: Some(_),
                                        ..
                                    }
                                )
                            })
                            .count() as u64;
                        p.events.retain(|e| {
                            !matches!(
                                e,
                                cvm_net::FaultEvent::Kill { .. }
                                    | cvm_net::FaultEvent::KillAtPhase { .. }
                                    | cvm_net::FaultEvent::Partition {
                                        heal_at: Some(_),
                                        ..
                                    }
                            )
                        });
                    }
                    // Exponential backoff with seeded jitter before the
                    // next attempt, so a persistent fault cannot spin the
                    // loop into a recovery storm.
                    backoff_waits += 1;
                    std::thread::sleep(backoff_delay(recoveries, backoff_seed));
                }
            }
        }
    }
}

/// Deterministic pause before recovery attempt `attempt` (1-based):
/// exponential from 1 ms, capped at 64 ms, minus up to half a step of
/// seeded jitter so co-failing runs do not retry in lockstep.
fn backoff_delay(attempt: u64, seed: u64) -> std::time::Duration {
    const CAP_MS: u64 = 64;
    let step_ms = 1u64 << attempt.saturating_sub(1).min(6);
    let step_ms = step_ms.min(CAP_MS);
    let jitter_us =
        splitmix64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (step_ms * 500);
    std::time::Duration::from_micros(step_ms * 1000 - jitter_us)
}

/// SplitMix64 finalizer (same keyed-dice construction as the transport's
/// fault injection): one u64 in, one well-mixed u64 out.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One execution attempt: build the network and nodes (restoring from the
/// newest complete checkpoint cut, if any), run the application, collect.
#[allow(clippy::too_many_arguments)]
fn run_attempt<S, F>(
    cfg: &DsmConfig,
    app_state: &S,
    body: &F,
    segments: cvm_page::SegmentMap,
    store: Option<&Arc<CheckpointStore>>,
    started: Instant,
    master: ProcId,
    term: u64,
    announce: bool,
) -> Result<RunReport, RunError>
where
    S: Sync,
    F: Fn(&ProcHandle, &S) + Sync,
{
    let nprocs = cfg.nprocs;
    let mi = master.0 as usize;
    {
        let (endpoints, net_stats, rstats): (_, _, Option<Arc<ReliabilityStats>>) =
            match &cfg.net_loss {
                None => {
                    let (eps, stats) = Network::new(nprocs, cfg.net);
                    (eps, stats, None)
                }
                Some(loss) => {
                    let (eps, stats, rstats) = Network::with_loss(nprocs, cfg.net, loss.clone());
                    (eps, stats, Some(rstats))
                }
            };
        let shutdown_txs: Vec<cvm_net::NetSender> =
            endpoints.iter().map(Endpoint::sender).collect();

        let resume = store.and_then(|s| s.last_complete_epoch(nprocs));
        let ctl = Arc::new(ClusterCtl::new());
        // Pipelined detection: the master's barrier feeds a dedicated
        // stage thread (spawned below) through this channel.
        let pipelined =
            cfg.detect.pipelined && cfg.detect.enabled && !cfg.detect.instrumentation_only;
        let mut stage_rx = None;
        // The cut-time master when a failover has moved the seat since
        // the restored cut was taken: `(node, its stale seat term)`.  Used
        // for the split-brain scrub after the announce round, and counted
        // as a rejoin-from-cut.
        let mut old_master: Option<(ProcId, u64)> = None;
        let mut rejoin_restores = 0u64;
        let nodes: Vec<Arc<Node>> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let proc = ProcId::from_index(i);
                let mut core = NodeCore::new(cfg.clone(), proc);
                if i == mi {
                    let mut bm = BarrierMaster::new(nprocs);
                    if pipelined {
                        let (tx, rx) = crossbeam::channel::unbounded();
                        bm.pipe = Some(crate::pipeline::PipelineState::new(tx));
                        stage_rx = Some(rx);
                    }
                    core.barrier = Some(bm);
                }
                if let Some(schedule) = &cfg.replay {
                    core.replay = Some(ReplayCursor::new(schedule.clone()));
                }
                if let Some(p) = &cfg.net_loss {
                    // Scripted protocol-window strikes aimed at this node:
                    // the transport carries them, this layer fires them.
                    core.phase_kills = p
                        .events
                        .iter()
                        .filter_map(|e| match e {
                            cvm_net::FaultEvent::KillAtPhase { node, phase, hit }
                                if *node == proc =>
                            {
                                Some((*phase, *hit))
                            }
                            _ => None,
                        })
                        .collect();
                }
                if let Some(s) = store {
                    core.ckpt = Some(Arc::clone(s));
                    if let Some(epoch) = resume {
                        let img = s
                            .image(epoch, proc.0)
                            .expect("complete epoch has every node's image");
                        crate::checkpoint::restore(&mut core, &img);
                        // The cut-time master lost the seat since this cut
                        // was taken: it was cut off from the re-seating
                        // (dead or partitioned) and now rejoins from the
                        // agreed cut at the current term, as a worker.
                        if core.master == proc && core.master != master {
                            rejoin_restores += 1;
                        }
                        // A failover moved the seat since this cut was
                        // taken: the detector's accumulated statistics live
                        // in the cut-time master's image (workers carry
                        // zeros), so the successor adopts them — together
                        // with its own restored race log, that is the full
                        // master state reconstructed from the cut.
                        if i == mi && core.master != master {
                            old_master = Some((core.master, img.seat_term));
                            if let Some(prev) = s.image(epoch, core.master.0) {
                                core.det_stats =
                                    crate::checkpoint::det_stats_from_vec(&prev.det_stats);
                            }
                        }
                    }
                }
                // The attempt's seat overrides whatever the image recorded
                // (workers keep their restored — possibly stale — term and
                // adopt the current one through the handoff round).
                core.master = master;
                if i == mi {
                    core.seat_term = term;
                }
                Arc::new(Node {
                    state: Mutex::new(core),
                    sender: ep.sender(),
                    ctl: Arc::clone(&ctl),
                })
            })
            .collect();

        let genuine_panic: Option<Box<dyn Any + Send>> = std::thread::scope(|scope| {
            // Service threads own their endpoints.
            for (i, (node, ep)) in nodes.iter().zip(endpoints).enumerate() {
                let node = Arc::clone(node);
                let ctl = Arc::clone(&ctl);
                let rs = rstats.clone();
                scope.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        service_loop(&node, ep, rs)
                    }));
                    if r.is_err() && !ctl.tearing_down() {
                        ctl.fail(DsmError::NodeFailed { proc: i as u16 });
                    }
                });
            }
            // The master's detection stage (pipelined mode only).
            if let Some(rx) = stage_rx.take() {
                let node = Arc::clone(&nodes[mi]);
                let ctl = Arc::clone(&ctl);
                let detect = cfg.detect;
                let geometry = cfg.geometry;
                scope.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        crate::pipeline::detection_stage(&node, &rx, detect, geometry)
                    }));
                    // A stage panic is a protocol failure, not a node
                    // death: naming it keeps the diagnosis honest (nothing
                    // crashed the *node*) and keeps it non-retryable — a
                    // panicking detector would panic identically on replay.
                    // Blocked peers observe the error cell within one poll
                    // interval, so the run ends well inside the op
                    // deadline instead of hanging on the stall gate.
                    if r.is_err() && !ctl.tearing_down() {
                        ctl.fail(DsmError::Protocol {
                            context: "detection stage thread panicked",
                        });
                    }
                });
            }
            // Seat-announcement round: on a recovery attempt the master
            // (re-seated or not) broadcasts `MasterHandoff` with its view
            // of the resume epoch and the seat's term, and holds the
            // epoch loop until a strict majority of the configured nodes
            // (its own seat included) agrees.  A would-be master that
            // cannot assemble that quorum is on the minority side of a
            // partition: it surfaces the named `QuorumLost`, never a raw
            // timeout, and never drives detection.
            if announce {
                let epoch = resume.unwrap_or(0);
                let r = {
                    let mut st = nodes[mi].state.lock();
                    (0..nprocs as u16)
                        .map(ProcId)
                        .filter(|p| *p != master)
                        .try_for_each(|p| {
                            st.send_msg(
                                &nodes[mi].sender,
                                p,
                                &Msg::MasterHandoff {
                                    master,
                                    epoch,
                                    term,
                                },
                            )
                        })
                };
                let needed = nprocs / 2 + 1;
                if let Err(err) = r {
                    ctl.fail(name_own_death(err, master));
                } else {
                    let limit = Instant::now() + cfg.op_deadline;
                    loop {
                        if nodes[mi].state.lock().handoff_acks + 1 >= needed {
                            break;
                        }
                        if ctl.failed() {
                            // A peer declared dead while the seat is still
                            // short of its majority is the quorum loss
                            // itself, observed through the transport.
                            let got = nodes[mi].state.lock().handoff_acks + 1;
                            if got < needed {
                                ctl.reclassify_as_quorum_loss(got, needed);
                            }
                            break;
                        }
                        if Instant::now() >= limit {
                            let got = nodes[mi].state.lock().handoff_acks + 1;
                            ctl.fail(DsmError::QuorumLost { got, needed });
                            break;
                        }
                        std::thread::sleep(crate::fault::APP_POLL);
                    }
                }
                // Split-brain scrub: the restored cut-time master still
                // holds a claim to the seat it lost while cut off.  It
                // re-asserts that claim — under the stale term its image
                // recorded — against the node now holding the seat, which
                // fences it.  Exercising the fence on every failover keeps
                // the guarantee hot: two masters can never both drive
                // detection, whatever a healed partition delivers late.
                if !ctl.failed() {
                    if let Some((o, stale_term)) = old_master {
                        let r = {
                            let mut st = nodes[o.index()].state.lock();
                            st.send_msg(
                                &nodes[o.index()].sender,
                                master,
                                &Msg::MasterHandoff {
                                    master: o,
                                    epoch,
                                    term: stale_term,
                                },
                            )
                        };
                        if let Err(err) = r {
                            ctl.fail(name_own_death(err, o));
                        }
                    }
                }
            }
            // Application threads.  A failing thread unwinds with the
            // `DsmUnwind` sentinel (the diagnosis is already in the control
            // block); a *genuine* application panic fails the run as the
            // node's death and is re-thrown after the drain.
            let mut apps = Vec::new();
            for (i, node) in nodes.iter().enumerate() {
                let handle = ProcHandle {
                    node: Arc::clone(node),
                    proc: i,
                    nprocs,
                };
                let ctl = Arc::clone(&ctl);
                apps.push(scope.spawn(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        body(&handle, app_state)
                    })) {
                        Ok(()) => None,
                        Err(payload) => {
                            // Fail the run *before* this thread is joined so
                            // peers blocked mid-protocol unwind promptly
                            // instead of waiting out their deadlines.
                            ctl.fail(DsmError::NodeFailed { proc: i as u16 });
                            if payload.downcast_ref::<DsmUnwind>().is_none() {
                                Some(payload)
                            } else {
                                None
                            }
                        }
                    }
                }));
            }
            let mut genuine = None;
            for app in apps {
                if let Ok(Some(payload)) = app.join() {
                    genuine.get_or_insert(payload);
                }
            }
            // Reports are delivered one epoch deferred, so the final
            // epoch's detection may still be in flight; drain it while the
            // worker service threads (which answer the bitmap round) are
            // still up, then flush the deferred reports into the master's
            // race log.  A failed run gets a short bounded drain — dead
            // peers will never answer.
            if pipelined {
                let grace = if ctl.failed() {
                    std::time::Duration::from_millis(200)
                } else {
                    cfg.op_deadline
                };
                let limit = Instant::now() + grace;
                while crate::pipeline::pending_epochs(&nodes[mi].state.lock()) > 0 {
                    if Instant::now() >= limit {
                        break;
                    }
                    std::thread::sleep(crate::fault::APP_POLL);
                }
                crate::pipeline::flush_deferred(&mut nodes[mi].state.lock());
            }
            // Orderly shutdown: stop the service threads.  Send errors are
            // expected here (dead nodes have no wiring left).
            ctl.begin_teardown();
            let payload = Msg::Shutdown.to_bytes();
            for (i, tx) in shutdown_txs.iter().enumerate() {
                let b = Msg::Shutdown.breakdown();
                let _ = tx.send(ProcId::from_index(i), 0, b, payload.clone());
            }
            genuine
        });
        if let Some(payload) = genuine_panic {
            std::panic::resume_unwind(payload);
        }

        // Collect per-node state (partial when the run failed: every node
        // contributes whatever it accumulated before the drain).
        let mut reports = Vec::with_capacity(nprocs);
        let mut races = None;
        let mut det_stats = cvm_race::DetectorStats::default();
        let mut schedule = crate::replay::SyncSchedule::new();
        let mut watch_hits = Vec::new();
        let mut traces = Vec::with_capacity(nprocs);
        let mut resources = ResourceStats::default();
        let mut stale_fenced = 0u64;
        for node in nodes {
            let node = Arc::into_inner(node).expect("all threads joined");
            let core = node.state.into_inner();
            stale_fenced += core.stale_msgs_fenced;
            if core.proc == master {
                races = Some(core.race_log.clone());
                det_stats = core.det_stats;
            }
            schedule.merge(core.sched_rec.clone());
            watch_hits.extend(core.watch_hits.iter().copied());
            traces.push(core.trace.clone());
            resources.log_high_water = resources.log_high_water.max(core.stats.log_high_water);
            resources.bitmap_high_water = resources
                .bitmap_high_water
                .max(core.stats.bitmap_high_water);
            resources.retained_bytes_high_water = resources
                .retained_bytes_high_water
                .max(core.stats.retained_bytes_high_water);
            resources.soft_gcs += core.stats.soft_gcs;
            reports.push(NodeReport {
                proc: core.proc,
                stats: core.stats,
                cycles: core.clock.now(),
                cats: core.clock.cats(),
                shared_calls: core.analysis.shared_calls(),
                private_calls: core.analysis.private_calls(),
            });
        }

        // Transport- and store-side marks (read before `rstats` moves into
        // the report).  These counters are timing-dependent, which is why
        // they live here and not in the deterministic snapshots.
        resources.link_high_water = net_stats.link_high_water();
        if let Some(rs) = &rstats {
            use std::sync::atomic::Ordering;
            resources.queue_high_water = rs.queue_high_water.load(Ordering::Relaxed);
            resources.credit_stalls = rs.credit_stalls.load(Ordering::Relaxed);
            resources.link_high_water = resources.link_high_water.max(rs.link_high_water());
        }
        if let Some(s) = store {
            resources.cuts_evicted = s.cuts_evicted();
            resources.checkpoint_bytes_live = s.checkpoint_bytes_live();
        }

        let report = RunReport {
            nodes: reports,
            races: races.expect("master node present"),
            det_stats,
            net: net_stats.snapshot(),
            reliability: rstats.map(|r| r.full()),
            segments,
            schedule,
            watch_hits,
            traces,
            recovery: RecoveryStats {
                stale_msgs_fenced: stale_fenced,
                rejoin_restores,
                ..RecoveryStats::default()
            },
            resources,
            wall: started.elapsed(),
        };
        match ctl.failure() {
            Some(error) => Err(RunError {
                error,
                partial: Box::new(report),
            }),
            None => Ok(report),
        }
    }
}

/// The per-node message dispatch loop (CVM's SIGIO handler, as a thread).
///
/// Polls so it can observe teardown even when its own traffic is cut off (a
/// partitioned node never receives the shutdown message it sends itself).
/// Handler errors outside teardown fail the run; the loop keeps draining so
/// peers' in-flight requests do not back up behind the failure.
///
/// Idle polls also run the overload watchdog: a credit-stalled link with no
/// datagram delivery and no virtual-time progress for a full `op_deadline`
/// is a diagnosed credit deadlock, converted into a named
/// [`DsmError::Timeout`] instead of hanging until some blocked operation's
/// own deadline fires anonymously.
fn service_loop(node: &Node, ep: Endpoint, rstats: Option<Arc<ReliabilityStats>>) {
    let (op_deadline, cancel) = {
        let st = node.state.lock();
        (st.cfg.op_deadline, st.cfg.cancel.clone())
    };
    let mut watchdog = Watchdog::default();
    loop {
        // External cancellation: checked every dispatch iteration (not just
        // idle polls) so a busy node still drains within one message.
        if let Some(token) = &cancel {
            if token.is_cancelled() && !node.ctl.tearing_down() {
                node.ctl.fail(DsmError::Cancelled);
            }
        }
        let pkt = match ep.recv_timeout(SERVICE_POLL) {
            Ok(pkt) => pkt,
            Err(NetError::Empty) => {
                if node.ctl.tearing_down() {
                    return;
                }
                if let Some(rs) = &rstats {
                    watchdog.poll(node, rs, op_deadline);
                }
                continue;
            }
            Err(NetError::Disconnected) => {
                // Our own wiring is gone mid-run: a scripted kill.
                if !node.ctl.tearing_down() {
                    let me = node.state.lock().proc;
                    node.ctl.fail(DsmError::NodeFailed { proc: me.0 });
                }
                return;
            }
            Err(NetError::PeerDead { peer }) => {
                node.ctl.fail(DsmError::NodeFailed { proc: peer.0 });
                let mut st = node.state.lock();
                let me = st.proc;
                let r = crate::locks::handle_peer_death(&mut st, node, peer);
                drop(st);
                if let Err(err) = r {
                    node.ctl.fail(name_own_death(err, me));
                }
                continue;
            }
            Err(e) => {
                node.ctl.fail(DsmError::Net(e));
                return;
            }
        };
        let Ok(msg) = Msg::from_bytes(&pkt.payload) else {
            node.ctl.fail(DsmError::Protocol {
                context: "malformed protocol message",
            });
            continue;
        };
        // Decoded fine, but the ids inside still index our tables: reject
        // anything naming a process outside the cluster before dispatch.
        if msg.validate(ep.sender().fanout()).is_err() {
            node.ctl.fail(DsmError::Protocol {
                context: "protocol message failed structural validation",
            });
            continue;
        }
        if matches!(msg, Msg::Shutdown) {
            return;
        }
        let mut st = node.state.lock();
        st.clock_recv(&pkt);
        let me = st.proc;
        let r = match msg {
            Msg::LockReq {
                lock,
                requester,
                vc,
            } => crate::locks::mgr_handle_req(&mut st, node, lock, requester, vc),
            Msg::LockFwd {
                lock,
                requester,
                vc,
            } => crate::locks::handle_fwd(&mut st, node, lock, requester, vc),
            Msg::LockGrant {
                lock,
                records,
                vc,
                trace_from,
            } => crate::locks::handle_grant(&mut st, lock, records, vc, trace_from),
            Msg::PageReadReq { page, requester } => {
                crate::pages::on_page_read_req(&mut st, node, page, requester)
            }
            Msg::PageReadFwd { page, requester } => {
                crate::pages::on_page_read_fwd(&mut st, node, page, requester)
            }
            Msg::PageReadReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, false)
            }
            Msg::PageOwnReq { page, requester } => {
                crate::pages::on_page_own_req(&mut st, node, page, requester)
            }
            Msg::PageOwnFwd { page, requester } => {
                crate::pages::on_page_own_fwd(&mut st, node, page, requester)
            }
            Msg::PageOwnReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, true)
            }
            Msg::PageFetchReq {
                page,
                requester,
                needed,
            } => crate::pages::on_page_fetch_req(&mut st, node, page, requester, needed),
            Msg::PageFetchReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, false)
            }
            Msg::DiffFlush {
                writer,
                interval,
                diffs,
            } => crate::pages::on_diff_flush(&mut st, node, writer, interval, diffs),
            Msg::BarrierArrive { from, vc, records } => {
                crate::barrier::on_arrive(&mut st, node, from, vc, records)
            }
            Msg::BitmapReq { items } => crate::barrier::on_bitmap_req(&mut st, node, items),
            Msg::BitmapReply { items } => crate::barrier::on_bitmap_reply(&mut st, node, items),
            Msg::BarrierRelease {
                vc,
                records,
                races,
                epoch,
                term,
            } => {
                if st.fence_stale(term) {
                    Ok(())
                } else {
                    crate::barrier::apply_release(&mut st, node, records, vc, races, epoch)
                }
            }
            Msg::CkptAck { from: _, epoch } => crate::checkpoint::on_ckpt_ack(&mut st, node, epoch),
            Msg::CkptGo { epoch, races, term } => {
                if st.fence_stale(term) {
                    Ok(())
                } else {
                    crate::checkpoint::on_ckpt_go(&mut st, epoch, races)
                }
            }
            Msg::MasterHandoff {
                master,
                epoch,
                term,
            } => crate::barrier::on_master_handoff(&mut st, node, master, epoch, term),
            Msg::MasterHandoffAck { from: _, epoch } => {
                crate::barrier::on_master_handoff_ack(&mut st, epoch)
            }
            Msg::Shutdown => unreachable!("handled above"),
        };
        drop(st);
        if let Err(err) = r {
            if !node.ctl.tearing_down() {
                node.ctl.fail(name_own_death(err, me));
            }
        }
    }
}

/// Overload-watchdog state for one service loop.
///
/// Progress is `(datagrams delivered fabric-wide, this node's virtual
/// clock)`; the timer arms only while some sender is credit-stalled and
/// resets whenever either measure moves or the stall clears, so ordinary
/// backpressure (slow but moving) never trips it.
#[derive(Default)]
struct Watchdog {
    last_progress: (u64, u64),
    stalled_since: Option<Instant>,
    diagnosed: bool,
}

impl Watchdog {
    fn poll(&mut self, node: &Node, rs: &ReliabilityStats, op_deadline: std::time::Duration) {
        use std::sync::atomic::Ordering;
        if self.diagnosed {
            return;
        }
        if rs.credit_stalled_now.load(Ordering::Relaxed) == 0 {
            self.stalled_since = None;
            return;
        }
        let progress = (
            rs.delivered.load(Ordering::Relaxed),
            node.state.lock().clock.now(),
        );
        match self.stalled_since {
            Some(since) if progress == self.last_progress => {
                if since.elapsed() >= op_deadline {
                    self.diagnosed = true;
                    node.ctl.fail(DsmError::Timeout {
                        op: "credit-window progress",
                    });
                }
            }
            _ => {
                self.last_progress = progress;
                self.stalled_since = Some(Instant::now());
            }
        }
    }
}

/// A `Disconnected` send from a protocol handler means *this* node's wire
/// endpoint is gone — a scripted kill landing mid-dispatch.  Name the node
/// so the failure is retryable under [`RecoveryPolicy::Recover`], matching
/// the receive-path and application-path diagnoses.
fn name_own_death(err: DsmError, me: ProcId) -> DsmError {
    match err {
        DsmError::Net(NetError::Disconnected) => DsmError::NodeFailed { proc: me.0 },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    use cvm_net::NetConfig;

    use super::*;
    use crate::fault::ClusterCtl;

    fn idle_node() -> (Node, Vec<Endpoint>) {
        let (eps, _) = Network::new(2, NetConfig::default());
        let node = Node {
            state: Mutex::new(NodeCore::new(DsmConfig::new(2), ProcId(0))),
            sender: eps[0].sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        (node, eps)
    }

    #[test]
    fn watchdog_diagnoses_a_stuck_credit_stall() {
        let (node, _eps) = idle_node();
        let rs = ReliabilityStats::default();
        rs.credit_stalled_now.store(1, Ordering::Relaxed);
        let mut wd = Watchdog::default();
        // First observation only arms the timer.
        wd.poll(&node, &rs, Duration::ZERO);
        assert!(node.ctl.failure().is_none(), "one sample is not a deadlock");
        // Same (delivered, virtual clock) past the deadline: diagnosed.
        wd.poll(&node, &rs, Duration::ZERO);
        assert_eq!(
            node.ctl.failure(),
            Some(DsmError::Timeout {
                op: "credit-window progress"
            })
        );
        // Latched: one diagnosis per loop, even if polled again.
        wd.poll(&node, &rs, Duration::ZERO);
        assert!(wd.diagnosed);
    }

    #[test]
    fn watchdog_resets_on_progress_or_stall_clearing() {
        let (node, _eps) = idle_node();
        let rs = ReliabilityStats::default();
        let mut wd = Watchdog::default();
        rs.credit_stalled_now.store(1, Ordering::Relaxed);
        wd.poll(&node, &rs, Duration::ZERO);
        // Fabric delivery between polls is progress: re-arm, don't fire.
        rs.delivered.fetch_add(1, Ordering::Relaxed);
        wd.poll(&node, &rs, Duration::ZERO);
        assert!(
            node.ctl.failure().is_none(),
            "progress must reset the timer"
        );
        // The stall clearing disarms the timer entirely.
        rs.credit_stalled_now.store(0, Ordering::Relaxed);
        wd.poll(&node, &rs, Duration::ZERO);
        assert!(wd.stalled_since.is_none());
        assert!(node.ctl.failure().is_none());
        // A fresh stall with frozen progress still ends in a diagnosis.
        rs.credit_stalled_now.store(1, Ordering::Relaxed);
        wd.poll(&node, &rs, Duration::ZERO);
        wd.poll(&node, &rs, Duration::ZERO);
        assert!(matches!(node.ctl.failure(), Some(DsmError::Timeout { .. })));
    }

    #[test]
    fn watchdog_ignores_healthy_links() {
        let (node, _eps) = idle_node();
        let rs = ReliabilityStats::default();
        let mut wd = Watchdog::default();
        for _ in 0..3 {
            wd.poll(&node, &rs, Duration::ZERO);
        }
        assert!(node.ctl.failure().is_none());
        assert!(wd.stalled_since.is_none());
    }

    #[test]
    fn stale_term_master_messages_are_fenced_not_applied() {
        // A node whose seat term has advanced to 2 receives master-
        // originated traffic stamped with term 1 — exactly what a healed
        // partition delivers late.  Every such message must be dropped at
        // dispatch and counted, never applied: an applied `BarrierRelease`
        // for a bogus epoch (or an adopted stale `MasterHandoff`) would
        // fail the run, so "no failure recorded" is itself the proof.
        let (mut eps, _) = Network::new(2, NetConfig::default());
        let ep1 = eps.pop().expect("two endpoints");
        let ep0 = eps.pop().expect("two endpoints");
        let node = Node {
            state: Mutex::new(NodeCore::new(DsmConfig::new(2), ProcId(0))),
            sender: ep0.sender(),
            ctl: Arc::new(ClusterCtl::new()),
        };
        node.state.lock().seat_term = 2;
        let mut peer = NodeCore::new(DsmConfig::new(2), ProcId(1));
        std::thread::scope(|s| {
            s.spawn(|| service_loop(&node, ep0, None));
            let stale_release = Msg::BarrierRelease {
                vc: cvm_vclock::VClock::from(vec![7, 7]),
                records: vec![],
                races: Arc::new(vec![]),
                epoch: 99,
                term: 1,
            };
            let stale_seat = Msg::MasterHandoff {
                master: ProcId(1),
                epoch: 0,
                term: 1,
            };
            peer.send_msg(&ep1.sender(), ProcId(0), &stale_release)
                .unwrap();
            peer.send_msg(&ep1.sender(), ProcId(0), &stale_seat)
                .unwrap();
            peer.send_msg(&ep1.sender(), ProcId(0), &Msg::Shutdown)
                .unwrap();
        });
        let st = node.state.lock();
        assert_eq!(st.stale_msgs_fenced, 2, "both stale messages counted");
        assert_eq!(st.master, ProcId(0), "stale seat claim must not adopt");
        assert_eq!(st.seat_term, 2, "the term never moves backward");
        assert!(
            node.ctl.failure().is_none(),
            "fenced traffic must not fail the run: {:?}",
            node.ctl.failure()
        );
        drop(st);

        // A *current*-term handoff is the legitimate succession path: it
        // must still adopt (the fence is term-keyed, not a blanket drop).
        let mut st = node.state.lock();
        crate::barrier::on_master_handoff(&mut st, &node, ProcId(1), 0, 3)
            .expect("current-term handoff applies");
        assert_eq!(st.master, ProcId(1));
        assert_eq!(st.seat_term, 3);
        assert_eq!(st.stale_msgs_fenced, 2, "adoption is not a fence event");
    }
}
