//! Cluster construction, the service loop, and run orchestration.

use std::sync::Arc;
use std::time::Instant;

use cvm_net::wire::Wire;
use cvm_net::{Endpoint, NetError, Network};
use cvm_page::SharedAlloc;
use cvm_vclock::ProcId;
use parking_lot::Mutex;

use crate::barrier::BarrierMaster;
use crate::config::DsmConfig;
use crate::handle::ProcHandle;
use crate::msg::Msg;
use crate::node::NodeCore;
use crate::pages::Node;
use crate::replay::ReplayCursor;
use crate::report::{NodeReport, RunReport};

/// Builder/runner for simulated CVM clusters.
///
/// A run proceeds in three phases, mirroring how the original programs were
/// structured:
///
/// 1. **setup** — a closure allocates named shared segments (every process
///    sees the same deterministic addresses) and returns the application's
///    address bundle;
/// 2. **parallel execution** — one application thread per process runs the
///    body against its [`ProcHandle`], while one service thread per node
///    handles protocol messages;
/// 3. **teardown** — service threads stop, per-node state is collected into
///    a [`RunReport`].
pub struct Cluster;

impl Cluster {
    /// Runs `body` on `cfg.nprocs` simulated processes.
    ///
    /// `setup` allocates shared data; its return value is passed (shared)
    /// to every process body.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, if allocation exceeds the
    /// shared segment, or if any application thread panics (application
    /// assertion failures propagate).
    pub fn run<S, F>(
        cfg: DsmConfig,
        setup: impl FnOnce(&mut SharedAlloc) -> S,
        body: F,
    ) -> RunReport
    where
        S: Sync,
        F: Fn(&ProcHandle, &S) + Sync,
    {
        cfg.validate();
        let started = Instant::now();
        let nprocs = cfg.nprocs;

        let mut alloc = SharedAlloc::new(cfg.geometry, cfg.shared_capacity);
        let app_state = setup(&mut alloc);
        let segments = alloc.into_map();

        let (endpoints, net_stats) = match cfg.net_loss {
            None => Network::new(nprocs, cfg.net),
            Some(loss) => {
                let (eps, stats, _rstats) = Network::with_loss(nprocs, cfg.net, loss);
                (eps, stats)
            }
        };
        let shutdown_txs: Vec<cvm_net::NetSender> =
            endpoints.iter().map(Endpoint::sender).collect();

        let nodes: Vec<Arc<Node>> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let proc = ProcId::from_index(i);
                let mut core = NodeCore::new(cfg.clone(), proc);
                if i == 0 {
                    core.barrier = Some(BarrierMaster::new(nprocs));
                }
                if let Some(schedule) = &cfg.replay {
                    core.replay = Some(ReplayCursor::new(schedule.clone()));
                }
                Arc::new(Node {
                    state: Mutex::new(core),
                    sender: ep.sender(),
                })
            })
            .collect();

        std::thread::scope(|scope| {
            // A panic in any node thread would leave peers blocked on
            // channels forever; fail the whole process fast instead.
            let die = |what: &str, i: usize, e: Box<dyn std::any::Any + Send>| -> ! {
                let msg = e
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| e.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                eprintln!("FATAL: {what} thread of P{i} panicked: {msg}");
                std::process::exit(101);
            };
            // Service threads own their endpoints.
            for (i, (node, ep)) in nodes.iter().zip(endpoints).enumerate() {
                let node = Arc::clone(node);
                scope.spawn(move || {
                    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        service_loop(&node, ep)
                    })) {
                        die("service", i, e);
                    }
                });
            }
            // Application threads.
            let mut apps = Vec::new();
            for (i, node) in nodes.iter().enumerate() {
                let handle = ProcHandle {
                    node: Arc::clone(node),
                    proc: i,
                    nprocs,
                };
                let body = &body;
                let app_state = &app_state;
                apps.push(scope.spawn(move || {
                    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        body(&handle, app_state)
                    })) {
                        die("application", i, e);
                    }
                }));
            }
            let mut failed = Vec::new();
            for (i, app) in apps.into_iter().enumerate() {
                if app.join().is_err() {
                    failed.push(i);
                }
            }
            // Stop service threads (also unblocks them if a peer died).
            let payload = Msg::Shutdown.to_bytes();
            for (i, tx) in shutdown_txs.iter().enumerate() {
                let b = Msg::Shutdown.breakdown();
                let _ = tx.send(ProcId::from_index(i), 0, b, payload.clone());
            }
            assert!(
                failed.is_empty(),
                "application thread(s) {failed:?} panicked"
            );
        });

        // Collect per-node state.
        let mut reports = Vec::with_capacity(nprocs);
        let mut races = None;
        let mut det_stats = cvm_race::DetectorStats::default();
        let mut schedule = crate::replay::SyncSchedule::new();
        let mut watch_hits = Vec::new();
        let mut traces = Vec::with_capacity(nprocs);
        for node in nodes {
            let node = Arc::into_inner(node).expect("all threads joined");
            let core = node.state.into_inner();
            if core.proc == ProcId(0) {
                races = Some(core.race_log.clone());
                det_stats = core.det_stats;
            }
            schedule.merge(core.sched_rec.clone());
            watch_hits.extend(core.watch_hits.iter().copied());
            traces.push(core.trace.clone());
            reports.push(NodeReport {
                proc: core.proc,
                stats: core.stats,
                cycles: core.clock.now(),
                cats: core.clock.cats(),
                shared_calls: core.analysis.shared_calls(),
                private_calls: core.analysis.private_calls(),
            });
        }

        RunReport {
            nodes: reports,
            races: races.expect("master node present"),
            det_stats,
            net: net_stats.snapshot(),
            segments,
            schedule,
            watch_hits,
            traces,
            wall: started.elapsed(),
        }
    }
}

/// The per-node message dispatch loop (CVM's SIGIO handler, as a thread).
fn service_loop(node: &Node, ep: Endpoint) {
    loop {
        let pkt = match ep.recv() {
            Ok(pkt) => pkt,
            Err(NetError::Disconnected) => return,
            Err(e) => panic!("service recv: {e}"),
        };
        let msg = Msg::from_bytes(&pkt.payload).expect("malformed protocol message");
        if matches!(msg, Msg::Shutdown) {
            return;
        }
        let mut st = node.state.lock();
        st.clock_recv(&pkt);
        match msg {
            Msg::LockReq {
                lock,
                requester,
                vc,
            } => crate::locks::mgr_handle_req(&mut st, node, lock, requester, vc),
            Msg::LockFwd {
                lock,
                requester,
                vc,
            } => crate::locks::handle_fwd(&mut st, node, lock, requester, vc),
            Msg::LockGrant {
                lock,
                records,
                vc,
                trace_from,
            } => crate::locks::handle_grant(&mut st, lock, records, vc, trace_from),
            Msg::PageReadReq { page, requester } => {
                crate::pages::on_page_read_req(&mut st, node, page, requester)
            }
            Msg::PageReadFwd { page, requester } => {
                crate::pages::on_page_read_fwd(&mut st, node, page, requester)
            }
            Msg::PageReadReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, false)
            }
            Msg::PageOwnReq { page, requester } => {
                crate::pages::on_page_own_req(&mut st, node, page, requester)
            }
            Msg::PageOwnFwd { page, requester } => {
                crate::pages::on_page_own_fwd(&mut st, node, page, requester)
            }
            Msg::PageOwnReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, true)
            }
            Msg::PageFetchReq {
                page,
                requester,
                needed,
            } => crate::pages::on_page_fetch_req(&mut st, node, page, requester, needed),
            Msg::PageFetchReply { page, data } => {
                crate::pages::on_page_reply(&mut st, page, data, false)
            }
            Msg::DiffFlush {
                writer,
                interval,
                diffs,
            } => crate::pages::on_diff_flush(&mut st, node, writer, interval, diffs),
            Msg::BarrierArrive { from, vc, records } => {
                crate::barrier::on_arrive(&mut st, node, from, vc, records)
            }
            Msg::BitmapReq { items } => crate::barrier::on_bitmap_req(&mut st, node, items),
            Msg::BitmapReply { items } => crate::barrier::on_bitmap_reply(&mut st, node, items),
            Msg::BarrierRelease {
                vc,
                records,
                races,
                epoch,
            } => crate::barrier::apply_release(&mut st, records, vc, races, epoch),
            Msg::Shutdown => unreachable!("handled above"),
        }
    }
}
