//! The central barrier, where detection happens.
//!
//! Arrival messages carry each worker's interval records since the last
//! barrier, so the master has "complete and current information on all
//! intervals in the entire system" (paper §4, step 2).  The master then:
//!
//! 1. enumerates concurrent interval pairs (constant-time vector checks),
//! 2. builds the check list from page-notice overlaps,
//! 3. runs the *extra message round* retrieving word bitmaps (mod iii),
//! 4. compares bitmaps, separating false sharing from true races,
//! 5. piggybacks race reports and missing consistency records on the
//!    release messages.
//!
//! The barrier implementation creates two interval structures per barrier
//! (as the paper notes of CVM's): arrival closes the epoch's working
//! interval, and the release receipt closes the (empty) interval opened at
//! arrival — which is why barrier-only applications show two intervals per
//! barrier in Table 1.

use std::collections::HashMap;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver};
use cvm_page::PageId;
use cvm_race::{filter_first_races, BitmapStore, DetectionPlan, EpochDetector, Interval};
use cvm_vclock::{IntervalId, ProcId, VClock};

use crate::error::DsmError;
use crate::fault;
use crate::msg::Msg;
use crate::node::NodeCore;
use crate::pages::Node;
use crate::simtime::OverheadCat;

/// Master-side barrier state machine.  Lives on whichever node currently
/// holds the master seat (`NodeCore::master`): proc 0 on a fresh start, the
/// lowest-numbered survivor after a failover.
#[derive(Debug)]
pub(crate) struct BarrierMaster {
    nprocs: usize,
    phase: Phase,
    /// Present when detection runs pipelined (see [`crate::pipeline`]):
    /// the barrier releases on settlement and detection is deferred to the
    /// stage thread this state feeds.
    pub(crate) pipe: Option<crate::pipeline::PipelineState>,
}

#[derive(Debug)]
enum Phase {
    /// Waiting for arrivals.
    Collecting {
        /// `(worker, clock-at-arrival)`.
        arrived: Vec<(ProcId, VClock)>,
        /// All interval records of the epoch (shared with senders' logs).
        records: Vec<Arc<Interval>>,
    },
    /// Check list built; waiting for bitmap replies.
    AwaitingBitmaps {
        arrived: Vec<(ProcId, VClock)>,
        records: Vec<Arc<Interval>>,
        plan: DetectionPlan,
        store: BitmapStore,
        pending: usize,
    },
}

impl BarrierMaster {
    pub(crate) fn new(nprocs: usize) -> Self {
        BarrierMaster {
            nprocs,
            phase: Phase::Collecting {
                arrived: Vec::new(),
                records: Vec::new(),
            },
            pipe: None,
        }
    }
}

/// Application-thread `barrier()`.
pub(crate) fn app_barrier(node: &Node, consolidation: bool) {
    let mut st = node.state.lock();
    if consolidation {
        st.stats.consolidations += 1;
    } else {
        st.stats.barriers += 1;
    }
    let me = st.proc;
    let master = st.master;
    let deadline = st.cfg.op_deadline;
    let r = st.phase_strike(cvm_net::ProtocolPhase::BarrierCollect);
    fault::check(node, me, r);
    // Arrival is a release: close the working interval.
    let r = st.close_interval(&node.sender);
    fault::check(node, me, r);
    if st.cfg.trace {
        let epoch = st.epoch;
        st.trace
            .push(cvm_race::trace::TraceEvent::BarrierArrive { epoch });
    }
    let records = take_unsent(&mut st);
    // Open the between-arrival-and-release interval (closed, empty, at
    // release receipt).
    st.open_interval();
    let (tx, rx) = bounded(1);
    assert!(st.barrier_wait.is_none(), "nested barrier()");
    st.barrier_wait = Some(tx);
    let vc = st.vc.clone();
    let r = if me == master {
        on_arrive(&mut st, node, me, vc, records)
    } else {
        let msg = Msg::BarrierArrive {
            from: me,
            vc,
            records,
        };
        st.send_msg(&node.sender, master, &msg)
    };
    fault::check(node, me, r);
    drop(st);
    await_release(node, &rx, deadline, me, master);
}

/// Blocks an arrived application thread until the release, the cluster
/// failure cell, or the deadline.  The master waits the base deadline and,
/// on expiry, inspects its own collection state to name the process that
/// never arrived; workers wait half again as long so the master — the only
/// node that can identify the missing peer — classifies the failure first.
fn await_release(node: &Node, rx: &Receiver<()>, wait: Duration, me: ProcId, master: ProcId) {
    let wait = if me == master { wait } else { wait + wait / 2 };
    let limit = Instant::now() + wait;
    loop {
        match rx.recv_timeout(fault::APP_POLL) {
            Ok(()) => return,
            Err(RecvTimeoutError::Timeout) => {
                if node.ctl.failed() {
                    fault::unwind();
                }
                if Instant::now() >= limit {
                    if me == master {
                        if let Some(missing) = missing_arrival(node) {
                            fault::die(&node.ctl, DsmError::NodeFailed { proc: missing.0 });
                        }
                        fault::die(
                            &node.ctl,
                            DsmError::Timeout {
                                op: "barrier release",
                            },
                        );
                    }
                    // Only the master can release a worker.  It was given
                    // half again the deadline to classify the failure
                    // itself; silence past that means the master is the
                    // one that died, not some anonymous timeout.
                    fault::die(&node.ctl, DsmError::NodeFailed { proc: master.0 });
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                fault::die(&node.ctl, DsmError::NodeFailed { proc: me.0 });
            }
        }
    }
}

/// Master-side diagnosis: the lowest-numbered process that has not arrived
/// at the currently collecting barrier, if any.
fn missing_arrival(node: &Node) -> Option<ProcId> {
    let st = node.state.lock();
    let master = st.barrier.as_ref()?;
    let Phase::Collecting { arrived, .. } = &master.phase else {
        return None;
    };
    (0..master.nprocs as u16)
        .map(ProcId)
        .find(|p| !arrived.iter().any(|(a, _)| a == p))
}

fn take_unsent(st: &mut NodeCore) -> Vec<Arc<Interval>> {
    let ids = std::mem::take(&mut st.unsent_own);
    ids.iter()
        .map(|id| Arc::clone(st.log.get(id).expect("unsent record must be logged")))
        .collect()
}

/// Master: one arrival (from the network or from its own app thread).
pub(crate) fn on_arrive(
    st: &mut NodeCore,
    node: &Node,
    from: ProcId,
    vc: VClock,
    records: Vec<Arc<Interval>>,
) -> Result<(), DsmError> {
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.barrier_arrival);
    let Some(master) = st.barrier.as_mut() else {
        return Err(DsmError::Protocol {
            context: "barrier arrival at non-master",
        });
    };
    let all_arrived = {
        let Phase::Collecting {
            arrived,
            records: all,
        } = &mut master.phase
        else {
            return Err(DsmError::Protocol {
                context: "barrier arrival during bitmap round",
            });
        };
        arrived.push((from, vc));
        all.extend(records);
        arrived.len() == master.nprocs
    };
    if all_arrived {
        run_detection(st, node)?;
    }
    Ok(())
}

/// Steps 2–4: plan, then fetch bitmaps (or release immediately).
fn run_detection(st: &mut NodeCore, node: &Node) -> Result<(), DsmError> {
    let master = st.barrier.as_mut().expect("master only");
    let Phase::Collecting { arrived, records } = std::mem::replace(
        &mut master.phase,
        Phase::Collecting {
            arrived: Vec::new(),
            records: Vec::new(),
        },
    ) else {
        unreachable!("run_detection outside Collecting");
    };

    if !st.cfg.detect.enabled || st.cfg.detect.instrumentation_only {
        return do_release(st, node, arrived, records, Vec::new());
    }

    // Canonicalize the epoch's record order: arrivals land in wall-clock
    // order, but pair enumeration orients each reported pair by record
    // position, so detection must see a deterministic order for reports to
    // be reproducible run-to-run (and byte-identical between the
    // synchronous and pipelined masters).
    let mut records = records;
    records.sort_unstable_by_key(|r| r.id());

    // Pipelined mode: release immediately, detect off the critical path.
    if st
        .barrier
        .as_ref()
        .is_some_and(|master| master.pipe.is_some())
    {
        return crate::pipeline::pipelined_epoch(st, node, arrived, records);
    }

    st.phase_strike(cvm_net::ProtocolPhase::BitmapRound)?;
    let detector = EpochDetector {
        overlap: st.cfg.detect.overlap,
        enumeration: st.cfg.detect.enumeration,
        workers: st.cfg.detect.workers,
    };
    let plan = detector.plan(&records);
    // "Intervals" overhead: the comparison algorithm, serialized at the
    // master (the effect behind Figure 4's scaling).
    let c = st.cfg.costs;
    st.clock.add(
        OverheadCat::Intervals,
        plan.stats.pair_comparisons * c.vv_compare,
    );

    // Gather bitmap requests per owning process (step 4).
    let mut per_proc: HashMap<ProcId, Vec<(IntervalId, PageId)>> = HashMap::new();
    for (id, page) in plan.bitmap_requests() {
        per_proc.entry(id.proc).or_default().push((id, page));
    }
    let mut store = BitmapStore::new();
    // The master's own bitmaps are local.
    if let Some(own) = per_proc.remove(&st.proc) {
        for (id, page) in own {
            let bm = st
                .bitmaps
                .get(id, page)
                .expect("own bitmap requested but not retained")
                .clone();
            store.insert(id, page, bm);
        }
    }
    let pending = per_proc.len();
    if pending == 0 {
        return finish_detection(st, node, arrived, records, plan, store);
    }
    let reqs: Vec<(ProcId, Msg)> = per_proc
        .into_iter()
        .map(|(p, items)| (p, Msg::BitmapReq { items }))
        .collect();
    for (p, msg) in reqs {
        st.send_msg(&node.sender, p, &msg)?;
    }
    let master = st.barrier.as_mut().expect("master only");
    master.phase = Phase::AwaitingBitmaps {
        arrived,
        records,
        plan,
        store,
        pending,
    };
    Ok(())
}

/// Master: a bitmap reply from one worker.
pub(crate) fn on_bitmap_reply(
    st: &mut NodeCore,
    node: &Node,
    items: Vec<(IntervalId, (PageId, cvm_page::PageBitmaps))>,
) -> Result<(), DsmError> {
    if st
        .barrier
        .as_ref()
        .is_some_and(|master| master.pipe.is_some())
    {
        return crate::pipeline::on_bitmap_reply(st, items);
    }
    let finished = {
        let Some(master) = st.barrier.as_mut() else {
            return Err(DsmError::Protocol {
                context: "bitmap reply at non-master",
            });
        };
        let Phase::AwaitingBitmaps { store, pending, .. } = &mut master.phase else {
            return Err(DsmError::Protocol {
                context: "bitmap reply outside bitmap round",
            });
        };
        for (id, (page, bm)) in items {
            store.insert(id, page, bm);
        }
        *pending -= 1;
        *pending == 0
    };
    if finished {
        let master = st.barrier.as_mut().expect("master only");
        let Phase::AwaitingBitmaps {
            arrived,
            records,
            plan,
            store,
            ..
        } = std::mem::replace(
            &mut master.phase,
            Phase::Collecting {
                arrived: Vec::new(),
                records: Vec::new(),
            },
        )
        else {
            unreachable!();
        };
        finish_detection(st, node, arrived, records, plan, store)?;
    }
    Ok(())
}

/// Step 5: word-level comparison, reporting, release.
fn finish_detection(
    st: &mut NodeCore,
    node: &Node,
    arrived: Vec<(ProcId, VClock)>,
    records: Vec<Arc<Interval>>,
    mut plan: DetectionPlan,
    store: BitmapStore,
) -> Result<(), DsmError> {
    let detector = EpochDetector {
        overlap: st.cfg.detect.overlap,
        enumeration: st.cfg.detect.enumeration,
        workers: st.cfg.detect.workers,
    };
    let geometry = st.cfg.geometry;
    let epoch = st.epoch;
    let reports = detector
        .compare(&mut plan, &store, geometry, epoch)
        .expect("check-listed bitmaps must have been retrieved");
    let c = st.cfg.costs;
    let blocks = geometry.page_words.div_ceil(64) as u64;
    st.clock.add(
        OverheadCat::Bitmaps,
        plan.stats.bitmap_comparisons * blocks * c.bitmap_block_cmp,
    );

    let reports = if st.cfg.detect.first_races_only {
        if st.race_log.is_empty() {
            // All first races live in the earliest racy epoch (§6.4).
            let stamps: HashMap<IntervalId, cvm_vclock::IntervalStamp> =
                records.iter().map(|r| (r.id(), r.stamp.clone())).collect();
            filter_first_races(&reports, &stamps)
        } else {
            Vec::new()
        }
    } else {
        reports
    };

    st.det_stats.add(&plan.stats);
    do_release(st, node, arrived, records, reports)
}

/// Sends releases and completes the barrier at the master itself.
pub(crate) fn do_release(
    st: &mut NodeCore,
    node: &Node,
    arrived: Vec<(ProcId, VClock)>,
    records: Vec<Arc<Interval>>,
    races: Vec<cvm_race::RaceReport>,
) -> Result<(), DsmError> {
    // Merged knowledge: every arrival clock joined with the master's.
    let mut merged = st.vc.clone();
    for (_, vc) in &arrived {
        merged.merge(vc);
    }
    let epoch = st.epoch;
    // One shared copy of the epoch's reports; each release clones `Arc`s
    // (records and races both), not the underlying data.
    let races = Arc::new(races);
    for (worker, wvc) in &arrived {
        if *worker == st.proc {
            continue;
        }
        let missing: Vec<Arc<Interval>> = records
            .iter()
            .filter(|r| r.id().index > wvc.get(r.id().proc))
            .cloned()
            .collect();
        let msg = Msg::BarrierRelease {
            vc: merged.clone(),
            records: missing,
            races: Arc::clone(&races),
            epoch,
            term: st.seat_term,
        };
        st.send_msg(&node.sender, *worker, &msg)?;
    }
    // The master releases itself.
    let own_missing: Vec<Arc<Interval>> = records
        .iter()
        .filter(|r| r.id().index > st.vc.get(r.id().proc))
        .cloned()
        .collect();
    apply_release(st, node, own_missing, merged, races, epoch)
}

/// Worker (and master) release application: merge, close the empty
/// arrival interval, open the next epoch's working interval, GC.
pub(crate) fn apply_release(
    st: &mut NodeCore,
    node: &Node,
    records: Vec<Arc<Interval>>,
    vc: VClock,
    races: Arc<Vec<cvm_race::RaceReport>>,
    epoch: u64,
) -> Result<(), DsmError> {
    if epoch != st.epoch {
        return Err(DsmError::Protocol {
            context: "barrier epoch mismatch",
        });
    }
    // Close the empty between interval (second structure per barrier).
    // Note: it has no accesses, so no sender interaction is needed; use a
    // direct close without diff flushing.
    debug_assert!(st.cur.dirty.is_empty());
    let boundary = st.cur.index; // The quiet interval's index.
    close_quiet(st);
    if st.cfg.trace {
        st.trace
            .push(cvm_race::trace::TraceEvent::BarrierResume { epoch });
    }
    st.apply_records(records, &vc);
    // The merged release clock is now every process's knowledge floor:
    // soft-budget GC may drop remote state at or below it.
    st.barrier_floor = vc.clone();
    st.open_interval();
    st.race_log.extend(races.iter().cloned());
    st.epoch += 1;
    // GC (§6.3): everything checked this epoch is ordered with respect to
    // all future intervals; drop the records and bitmaps.  Keep only our
    // just-closed quiet interval (still unshipped).
    let me = st.proc;
    st.log.retain(|id, _| id.proc == me && id.index >= boundary);
    // Pipelined detection reads this epoch's bitmaps *after* the release
    // (the master's own locally, the workers' via a bitmap round that
    // arrives next epoch), so every node lags bitmap GC by one boundary.
    // The depth-1 stall gate guarantees that by the time the next release
    // applies, the in-between epoch's detection has drained.
    let bitmap_floor = if st.detection_pipelined() {
        std::mem::replace(&mut st.prev_gc_boundary, boundary)
    } else {
        boundary
    };
    st.bitmaps
        .retain(|(id, _)| id.proc != me || id.index >= bitmap_floor);
    if st.cfg.checkpointing() {
        // Withhold the app-thread release: the node snapshots (now, or
        // when its multi-writer diffs settle) and acks the master, which
        // broadcasts the commit once every image of this cut is stored.
        // Holding all app threads here keeps next-epoch traffic out of
        // slower nodes' snapshots.
        st.pending_ckpt = Some(st.epoch);
        return crate::checkpoint::maybe_complete(st, node);
    }
    let Some(tx) = st.barrier_wait.take() else {
        return Err(DsmError::Protocol {
            context: "barrier release without a waiting arrival",
        });
    };
    let _ = tx.send(());
    // Re-measure after the release merge: the grant records just applied
    // are the epoch's last retained-state growth.
    st.check_budget()
}

/// Closes the current (empty) interval without network interaction.
fn close_quiet(st: &mut NodeCore) {
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, c.interval_setup);
    if st.cfg.detect.enabled && !st.cfg.detect.instrumentation_only {
        st.clock.add(OverheadCat::CvmMods, c.interval_detect_extra);
    }
    let id = IntervalId::new(st.proc, st.cur.index);
    let stamp = cvm_vclock::IntervalStamp::new(id, st.cur.stamp_vc.clone());
    let record = Interval::new(stamp, Vec::new(), Vec::new());
    st.log.insert(id, Arc::new(record));
    st.unsent_own.push(id);
    st.vc.set(st.proc, st.cur.index);
    st.stats.intervals += 1;
}

/// Worker: answer the master's bitmap request from retained bitmaps.
pub(crate) fn on_bitmap_req(
    st: &mut NodeCore,
    node: &Node,
    items: Vec<(IntervalId, PageId)>,
) -> Result<(), DsmError> {
    st.phase_strike(cvm_net::ProtocolPhase::BitmapRound)?;
    let mut replies: Vec<(IntervalId, (PageId, cvm_page::PageBitmaps))> =
        Vec::with_capacity(items.len());
    for (id, page) in items {
        let Some(bm) = st.bitmaps.get(id, page) else {
            return Err(DsmError::Protocol {
                context: "bitmap requested but absent",
            });
        };
        replies.push((id, (page, bm.clone())));
    }
    let msg = Msg::BitmapReply { items: replies };
    let master = st.master;
    st.send_msg(&node.sender, master, &msg)
}

/// Worker: a failover successor announced its master seat and resume
/// epoch.  A stale-term announcement (an old master re-asserting a seat
/// across a healed partition) is fenced — counted and dropped, never
/// acknowledged.  Otherwise validate the epoch against our own restored
/// resume point, adopt the seat and its term, and acknowledge.
pub(crate) fn on_master_handoff(
    st: &mut NodeCore,
    node: &Node,
    master: ProcId,
    epoch: u64,
    term: u64,
) -> Result<(), DsmError> {
    if st.fence_stale(term) {
        return Ok(());
    }
    if epoch != st.resume_epoch {
        return Err(DsmError::Protocol {
            context: "master handoff epoch disagrees with restored cut",
        });
    }
    st.master = master;
    st.seat_term = term;
    // Adopting a newer seat demotes any master role this node restored
    // from its image: exactly one node drives detection per term.
    if master != st.proc {
        st.barrier = None;
    }
    let msg = Msg::MasterHandoffAck {
        from: st.proc,
        epoch,
    };
    st.send_msg(&node.sender, master, &msg)
}

/// Successor master: one survivor agreed to the new seat.  The cluster
/// loop holds the epoch loop until every survivor has acknowledged.
pub(crate) fn on_master_handoff_ack(st: &mut NodeCore, epoch: u64) -> Result<(), DsmError> {
    if st.barrier.is_none() {
        return Err(DsmError::Protocol {
            context: "handoff ack at non-master",
        });
    }
    if epoch != st.resume_epoch {
        return Err(DsmError::Protocol {
            context: "handoff ack for a different resume epoch",
        });
    }
    st.handoff_acks += 1;
    Ok(())
}
