//! Barrier-epoch checkpointing: recovery images and the consistent cut.
//!
//! LRC gives checkpointing the same gift it gives race detection: at a
//! barrier release every interval is closed, every lock is free, and the
//! master has just pushed a merged vector clock to every process — the
//! cluster is at a natural consistency point.  Each node therefore
//! serializes its *recovery image* — page frames (twins discarded),
//! version-vector state, interval log, lock tokens, detection metadata and
//! the application's epoch cursor — right after applying the release, and
//! parks the image in a shared [`CheckpointStore`] keyed by `(epoch, proc)`.
//!
//! Two wrinkles keep the image set a *consistent cut*:
//!
//! 1. **Withheld release.** Under [`RecoveryPolicy::Recover`](crate::RecoveryPolicy)
//!    the application thread is *not* released when the node applies the
//!    barrier release.  The node first snapshots, then sends
//!    [`Msg::CkptAck`] to the master; only when the master has collected an
//!    ack from every process does it broadcast [`Msg::CkptGo`], which
//!    finally signals the blocked `barrier()` calls.  Without this round, a
//!    fast node's next-epoch page or lock request could reach a slow node
//!    *before* that node snapshots, smuggling post-cut state into its image.
//! 2. **Diff watermarks.** The one fire-and-forget message in flight at a
//!    release is the multi-writer `DiffFlush`.  A home node defers its
//!    snapshot until every write notice it has seen for its own pages is
//!    covered by an applied diff (`mw_seen` ⊆ `mw_home.applied`), completing
//!    the deferred checkpoint from the diff-flush handler.
//!
//! Recovery itself is orchestrated by `Cluster::run`: on a node failure it
//! rolls every process back to the newest epoch for which *all* images
//! exist, rebuilds each `NodeCore` from its image, and re-enters the
//! barrier loop.  Applications opt in through the epoch-entry API
//! ([`ProcHandle::epochs`](crate::ProcHandle::epochs)), which skips
//! already-checkpointed phases on a restored node.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cvm_instrument::AnalysisRuntime;
use cvm_net::wire::{Reader, Wire, WireError};
use cvm_page::{Frame, PageBitmaps, PageId, Protection};
use cvm_race::trace::TraceEvent;
use cvm_race::{BitmapStore, DetectorStats, Interval, RaceLog, RaceReport};
use cvm_vclock::{IntervalId, ProcId, VClock};

use crate::config::Protocol;
use crate::error::DsmError;
use crate::msg::Msg;
use crate::node::{LockLocal, LockMgr, MwHome, NodeCore, NodeStats, OpenInterval};
use crate::pages::Node;
use crate::replay::SyncSchedule;
use crate::report::WatchHit;
use crate::simtime::{OverheadCat, VirtualClock, NCATS};

/// One node's complete recovery image at a barrier epoch.
///
/// The image captures exactly the state a fresh `NodeCore` needs to rejoin
/// the cluster at the epoch boundary.  Transient coordination state —
/// blocked waiter channels, in-flight page requests, replay holds, page
/// twins — is provably empty at the cut and is not serialized.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeImage {
    pub(crate) proc: ProcId,
    /// Barrier epochs completed — the resume cursor for the epoch-entry API.
    pub(crate) epoch: u64,
    pub(crate) clock_now: u64,
    pub(crate) clock_cats: Vec<u64>,
    /// Resident frames as `(page, (protection, words))`, sorted by page.
    pub(crate) frames: Vec<(PageId, (u8, Vec<u64>))>,
    pub(crate) vc: VClock,
    pub(crate) cur_index: u32,
    pub(crate) cur_stamp_vc: VClock,
    pub(crate) cur_dirty: Vec<PageId>,
    pub(crate) cur_read: Vec<PageId>,
    pub(crate) cur_bitmaps: Vec<(PageId, PageBitmaps)>,
    pub(crate) log: Vec<Interval>,
    pub(crate) unsent_own: Vec<IntervalId>,
    pub(crate) bitmap_store: Vec<((IntervalId, PageId), PageBitmaps)>,
    /// `(shared_calls, private_calls)` of the analysis runtime.
    pub(crate) analysis: (u64, u64),
    pub(crate) home_owner: Vec<(PageId, ProcId)>,
    /// Multi-writer home watermarks: applied interval index per writer.
    pub(crate) mw_applied: Vec<(PageId, Vec<(ProcId, u32)>)>,
    pub(crate) mw_seen: Vec<(PageId, Vec<(ProcId, u32)>)>,
    /// `(lock, ((have_token, held), release_vc))` for non-default locals.
    pub(crate) locks: Vec<(u32, LockImage)>,
    pub(crate) lock_mgr: Vec<(u32, ProcId)>,
    pub(crate) races: Vec<RaceReport>,
    pub(crate) det_stats: Vec<u64>,
    pub(crate) sched_rec: Vec<(u32, Vec<ProcId>)>,
    pub(crate) replay_pos: Vec<(u32, u32)>,
    pub(crate) stats: Vec<u64>,
    pub(crate) watch_hits: Vec<((ProcId, u32), (bool, u32))>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) trace_last_release: Vec<(u32, u32)>,
    /// The barrier-master seat at the time of the cut.  Recovery reads
    /// this to find where the detector's accumulated statistics live when
    /// a failover has moved the seat since the cut was taken.
    pub(crate) master: ProcId,
    /// The master-seat term the node had adopted at the cut.  A restored
    /// node resumes at this (possibly stale) term; only an accepted
    /// `MasterHandoff` moves it forward, so an old master restored across
    /// a re-seating speaks with a stale term and is fenced.
    pub(crate) seat_term: u64,
}

/// A lock's local state in an image: `((have_token, held), release_vc)`.
pub(crate) type LockImage = ((bool, bool), Option<VClock>);

fn prot_to_u8(p: Protection) -> u8 {
    match p {
        Protection::Invalid => 0,
        Protection::Read => 1,
        Protection::Write => 2,
    }
}

fn prot_from_u8(v: u8) -> Result<Protection, WireError> {
    match v {
        0 => Ok(Protection::Invalid),
        1 => Ok(Protection::Read),
        2 => Ok(Protection::Write),
        _ => Err(WireError::BadTag {
            what: "Protection",
            tag: v,
        }),
    }
}

fn det_stats_to_vec(s: &DetectorStats) -> Vec<u64> {
    vec![
        s.intervals_total,
        s.intervals_used,
        s.pair_comparisons,
        s.pairs_concurrent,
        s.pairs_overlapping,
        s.bitmaps_requested,
        s.bitmaps_total,
        s.bitmap_comparisons,
        s.races_found,
    ]
}

pub(crate) fn det_stats_from_vec(v: &[u64]) -> DetectorStats {
    DetectorStats {
        intervals_total: v[0],
        intervals_used: v[1],
        pair_comparisons: v[2],
        pairs_concurrent: v[3],
        pairs_overlapping: v[4],
        bitmaps_requested: v[5],
        bitmaps_total: v[6],
        bitmap_comparisons: v[7],
        races_found: v[8],
    }
}

fn node_stats_to_vec(s: &NodeStats) -> Vec<u64> {
    vec![
        s.intervals,
        s.barriers,
        s.consolidations,
        s.locks_local,
        s.locks_remote,
        s.read_faults,
        s.write_faults,
        s.pages_sent,
        s.diffs_made,
        s.diff_words,
        s.records_applied,
        s.shared_reads,
        s.shared_writes,
        s.log_high_water,
        s.bitmap_high_water,
        s.retained_bytes_high_water,
        s.soft_gcs,
        s.pipelined_epochs,
        s.pipeline_stalls,
    ]
}

fn node_stats_from_vec(v: &[u64]) -> NodeStats {
    NodeStats {
        intervals: v[0],
        barriers: v[1],
        consolidations: v[2],
        locks_local: v[3],
        locks_remote: v[4],
        read_faults: v[5],
        write_faults: v[6],
        pages_sent: v[7],
        diffs_made: v[8],
        diff_words: v[9],
        records_applied: v[10],
        shared_reads: v[11],
        shared_writes: v[12],
        log_high_water: v[13],
        bitmap_high_water: v[14],
        retained_bytes_high_water: v[15],
        soft_gcs: v[16],
        pipelined_epochs: v[17],
        pipeline_stalls: v[18],
    }
}

const DET_STATS_FIELDS: usize = 9;
const NODE_STATS_FIELDS: usize = 19;

impl Wire for NodeImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proc.encode(out);
        self.epoch.encode(out);
        self.clock_now.encode(out);
        self.clock_cats.encode(out);
        self.frames.encode(out);
        self.vc.encode(out);
        self.cur_index.encode(out);
        self.cur_stamp_vc.encode(out);
        self.cur_dirty.encode(out);
        self.cur_read.encode(out);
        self.cur_bitmaps.encode(out);
        self.log.encode(out);
        self.unsent_own.encode(out);
        self.bitmap_store.encode(out);
        self.analysis.encode(out);
        self.home_owner.encode(out);
        self.mw_applied.encode(out);
        self.mw_seen.encode(out);
        self.locks.encode(out);
        self.lock_mgr.encode(out);
        self.races.encode(out);
        self.det_stats.encode(out);
        self.sched_rec.encode(out);
        self.replay_pos.encode(out);
        self.stats.encode(out);
        self.watch_hits.encode(out);
        self.trace.encode(out);
        self.trace_last_release.encode(out);
        self.master.encode(out);
        self.seat_term.encode(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        let img = NodeImage {
            proc: Wire::decode(r)?,
            epoch: Wire::decode(r)?,
            clock_now: Wire::decode(r)?,
            clock_cats: Wire::decode(r)?,
            frames: Wire::decode(r)?,
            vc: Wire::decode(r)?,
            cur_index: Wire::decode(r)?,
            cur_stamp_vc: Wire::decode(r)?,
            cur_dirty: Wire::decode(r)?,
            cur_read: Wire::decode(r)?,
            cur_bitmaps: Wire::decode(r)?,
            log: Wire::decode(r)?,
            unsent_own: Wire::decode(r)?,
            bitmap_store: Wire::decode(r)?,
            analysis: Wire::decode(r)?,
            home_owner: Wire::decode(r)?,
            mw_applied: Wire::decode(r)?,
            mw_seen: Wire::decode(r)?,
            locks: Wire::decode(r)?,
            lock_mgr: Wire::decode(r)?,
            races: Wire::decode(r)?,
            det_stats: Wire::decode(r)?,
            sched_rec: Wire::decode(r)?,
            replay_pos: Wire::decode(r)?,
            stats: Wire::decode(r)?,
            watch_hits: Wire::decode(r)?,
            trace: Wire::decode(r)?,
            trace_last_release: Wire::decode(r)?,
            master: Wire::decode(r)?,
            seat_term: Wire::decode(r)?,
        };
        if img.clock_cats.len() != NCATS
            || img.det_stats.len() != DET_STATS_FIELDS
            || img.stats.len() != NODE_STATS_FIELDS
        {
            return Err(WireError::BadLength(img.clock_cats.len() as u64));
        }
        for (_, (prot, _)) in &img.frames {
            prot_from_u8(*prot)?;
        }
        Ok(img)
    }
}

impl NodeImage {
    /// Barrier epochs completed when the image was taken (also the epoch
    /// cursor the application resumes from).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The process this image belongs to.
    pub fn proc(&self) -> ProcId {
        self.proc
    }
}

/// Serializes a node's state at a barrier cut.
pub(crate) fn snapshot(st: &NodeCore) -> NodeImage {
    // Transient coordination state must be quiescent at the cut; anything
    // live here would be silently dropped by a restore.
    debug_assert!(st.page_wait.is_empty(), "page fault in flight at cut");
    debug_assert!(st.pending_local_write.is_empty());
    debug_assert!(st.page_queue.is_empty(), "queued page request at cut");
    debug_assert!(
        st.replay_pending.values().all(|q| q.is_empty()),
        "replay hold at cut"
    );
    debug_assert!(st.cur.dirty.is_empty(), "open interval dirty at cut");

    let mut frames: Vec<(PageId, (u8, Vec<u64>))> = st
        .pages
        .pages()
        .map(|p| {
            let f = st.pages.frame(p).expect("resident page has a frame");
            (p, (prot_to_u8(f.prot), f.data.to_vec()))
        })
        .collect();
    frames.sort_unstable_by_key(|(p, _)| *p);

    let mut cur_bitmaps: Vec<(PageId, PageBitmaps)> = st
        .cur
        .bitmaps
        .iter()
        .map(|(p, b)| (*p, b.clone()))
        .collect();
    cur_bitmaps.sort_unstable_by_key(|(p, _)| *p);

    let mut bitmap_store: Vec<((IntervalId, PageId), PageBitmaps)> =
        st.bitmaps.iter().map(|(k, v)| (*k, v.clone())).collect();
    bitmap_store.sort_unstable_by_key(|(k, _)| *k);

    let mut home_owner: Vec<(PageId, ProcId)> =
        st.home_owner.iter().map(|(p, o)| (*p, *o)).collect();
    home_owner.sort_unstable_by_key(|(p, _)| *p);

    let mut mw_applied: Vec<(PageId, Vec<(ProcId, u32)>)> = st
        .mw_home
        .iter()
        .map(|(p, h)| {
            debug_assert!(h.waiting.is_empty(), "gated fetch at cut");
            debug_assert!(h.local_waiter.is_none(), "gated local fault at cut");
            let mut applied: Vec<(ProcId, u32)> = h.applied.iter().map(|(w, i)| (*w, *i)).collect();
            applied.sort_unstable();
            (*p, applied)
        })
        .collect();
    mw_applied.sort_unstable_by_key(|(p, _)| *p);

    let mut mw_seen: Vec<(PageId, Vec<(ProcId, u32)>)> = st
        .mw_seen
        .iter()
        .map(|(p, v)| {
            let mut v = v.clone();
            v.sort_unstable();
            (*p, v)
        })
        .collect();
    mw_seen.sort_unstable_by_key(|(p, _)| *p);

    let mut locks: Vec<(u32, LockImage)> = st
        .locks
        .iter()
        .filter(|(_, l)| l.have_token || l.held || l.release_vc.is_some())
        .map(|(lock, l)| {
            debug_assert!(l.waiter.is_none(), "blocked lock() at cut");
            debug_assert!(l.successor.is_none(), "queued lock successor at cut");
            (*lock, ((l.have_token, l.held), l.release_vc.clone()))
        })
        .collect();
    locks.sort_unstable_by_key(|(l, _)| *l);

    let mut lock_mgr: Vec<(u32, ProcId)> = st.lock_mgr.iter().map(|(l, m)| (*l, m.last)).collect();
    lock_mgr.sort_unstable_by_key(|(l, _)| *l);

    let mut trace_last_release: Vec<(u32, u32)> = st
        .trace_last_release
        .iter()
        .map(|(l, i)| (*l, *i))
        .collect();
    trace_last_release.sort_unstable_by_key(|(l, _)| *l);

    let mut watch_hits: Vec<((ProcId, u32), (bool, u32))> = st
        .watch_hits
        .iter()
        .map(|h| ((h.proc, h.site), (h.write, h.interval)))
        .collect();
    watch_hits.sort_unstable();

    NodeImage {
        proc: st.proc,
        epoch: st.epoch,
        clock_now: st.clock.now(),
        clock_cats: st.clock.cats().to_vec(),
        frames,
        vc: st.vc.clone(),
        cur_index: st.cur.index,
        cur_stamp_vc: st.cur.stamp_vc.clone(),
        cur_dirty: st.cur.dirty.iter().copied().collect(),
        cur_read: st.cur.read.iter().copied().collect(),
        cur_bitmaps,
        log: st.log.values().map(|r| (**r).clone()).collect(),
        unsent_own: st.unsent_own.clone(),
        bitmap_store,
        analysis: (st.analysis.shared_calls(), st.analysis.private_calls()),
        home_owner,
        mw_applied,
        mw_seen,
        locks,
        lock_mgr,
        races: st.race_log.reports().to_vec(),
        det_stats: det_stats_to_vec(&st.det_stats),
        sched_rec: st.sched_rec.entries(),
        replay_pos: st
            .replay
            .as_ref()
            .map(|r| r.positions())
            .unwrap_or_default(),
        stats: node_stats_to_vec(&st.stats),
        watch_hits,
        trace: st.trace.clone(),
        trace_last_release,
        master: st.master,
        seat_term: st.seat_term,
    }
}

/// Rebuilds a fresh `NodeCore` from a recovery image, charging the
/// per-word restore cost.  The caller has already wired `barrier`,
/// `replay`, and `ckpt` into the core.
pub(crate) fn restore(st: &mut NodeCore, img: &NodeImage) {
    debug_assert_eq!(st.proc, img.proc, "image restored onto the wrong node");
    let mut cats = [0u64; NCATS];
    cats.copy_from_slice(&img.clock_cats);
    st.clock = VirtualClock::from_parts(img.clock_now, cats);
    let mut words = 0u64;
    for (page, (prot, data)) in &img.frames {
        words += data.len() as u64;
        let prot = prot_from_u8(*prot).expect("validated at decode");
        st.pages
            .install(*page, Frame::from_data(data.clone(), prot));
    }
    let c = st.cfg.costs;
    st.clock.add(OverheadCat::Base, words * c.restore_per_word);
    st.vc = img.vc.clone();
    st.cur = OpenInterval {
        index: img.cur_index,
        stamp_vc: img.cur_stamp_vc.clone(),
        dirty: img.cur_dirty.iter().copied().collect(),
        read: img.cur_read.iter().copied().collect(),
        bitmaps: img.cur_bitmaps.iter().cloned().collect(),
    };
    st.log = img
        .log
        .iter()
        .map(|r| (r.id(), Arc::new(r.clone())))
        .collect();
    st.unsent_own = img.unsent_own.clone();
    st.bitmaps = BitmapStore::new();
    for ((id, page), bm) in &img.bitmap_store {
        st.bitmaps.insert(*id, *page, bm.clone());
    }
    st.analysis = AnalysisRuntime::from_counts(img.analysis.0, img.analysis.1);
    st.home_owner = img.home_owner.iter().copied().collect();
    st.mw_home = img
        .mw_applied
        .iter()
        .map(|(page, applied)| {
            (
                *page,
                MwHome {
                    applied: applied.iter().copied().collect(),
                    waiting: Vec::new(),
                    local_waiter: None,
                },
            )
        })
        .collect();
    st.mw_seen = img.mw_seen.iter().cloned().collect();
    st.locks = img
        .locks
        .iter()
        .map(|(lock, ((have_token, held), release_vc))| {
            (
                *lock,
                LockLocal {
                    have_token: *have_token,
                    held: *held,
                    successor: None,
                    waiter: None,
                    release_vc: release_vc.clone(),
                },
            )
        })
        .collect();
    st.lock_mgr = img
        .lock_mgr
        .iter()
        .map(|(lock, last)| (*lock, LockMgr { last: *last }))
        .collect();
    st.epoch = img.epoch;
    st.resume_epoch = img.epoch;
    st.race_log = RaceLog::new();
    st.race_log.extend(img.races.iter().cloned());
    st.det_stats = det_stats_from_vec(&img.det_stats);
    st.sched_rec = SyncSchedule::from_entries(img.sched_rec.clone());
    if let Some(cursor) = st.replay.as_mut() {
        cursor.restore_positions(&img.replay_pos);
    }
    st.stats = node_stats_from_vec(&img.stats);
    st.watch_hits = img
        .watch_hits
        .iter()
        .map(|((proc, site), (write, interval))| WatchHit {
            proc: *proc,
            site: *site,
            write: *write,
            interval: *interval,
        })
        .collect();
    st.trace = img.trace.clone();
    st.trace_last_release = img.trace_last_release.iter().copied().collect();
    // The seat recorded at the cut.  On a failover attempt the cluster
    // overrides this with the successor after every restore, but reads it
    // first to locate the cut-time master's detector statistics.
    st.master = img.master;
    st.seat_term = img.seat_term;
    // The restored node has no current barrier floor: a stale floor from a
    // pre-kill epoch could let soft GC drop restored records that replay
    // still needs.  Reset it; the next release re-establishes it.
    st.barrier_floor = VClock::new(st.cfg.nprocs);
}

/// In-memory store of recovery images, shared by every node of a run.
///
/// Keyed by `(epoch, proc)`.  `Cluster::run` keeps it across recovery
/// attempts so a replacement node can be rebuilt from the newest epoch for
/// which *every* process deposited an image.
///
/// With a retention bound ([`with_retention`](Self::with_retention)) the
/// store keeps only the newest K *complete* epochs: depositing an image
/// evicts every epoch — complete or partial — older than the K-th newest
/// complete cut.  Partial cuts newer than that floor are in flight and
/// always survive.  Lifetime counters (`checkpoints_taken`,
/// `bytes_snapshotted`) are unaffected by eviction.
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<HashMap<(u64, u16), Vec<u8>>>,
    checkpoints_taken: AtomicU64,
    bytes_snapshotted: AtomicU64,
    cuts_evicted: AtomicU64,
    /// Complete epochs to retain; `usize::MAX` means unlimited.
    retain: usize,
    /// Cluster size, needed to recognize a complete cut (unused when
    /// retention is unlimited).
    nprocs: usize,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::with_retention(usize::MAX, 0)
    }
}

impl CheckpointStore {
    /// An empty store with unlimited retention.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// An empty store retaining the newest `retain` complete epochs for a
    /// cluster of `nprocs` processes.
    pub fn with_retention(retain: usize, nprocs: usize) -> Self {
        CheckpointStore {
            inner: Mutex::new(HashMap::new()),
            checkpoints_taken: AtomicU64::new(0),
            bytes_snapshotted: AtomicU64::new(0),
            cuts_evicted: AtomicU64::new(0),
            retain,
            nprocs,
        }
    }

    /// Deposits one node's encoded image for `epoch`.
    pub fn put(&self, epoch: u64, proc: u16, bytes: Vec<u8>) {
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        self.bytes_snapshotted
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        inner.insert((epoch, proc), bytes);
        self.enforce_retention(&mut inner, self.retain);
    }

    /// Evicts every epoch older than the `keep`-th newest complete cut.
    /// Recovery is unaffected: it steers to the newest complete cut, which
    /// is always retained.
    fn enforce_retention(&self, inner: &mut HashMap<(u64, u16), Vec<u8>>, keep: usize) {
        if keep == usize::MAX || self.nprocs == 0 {
            return;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for (epoch, _) in inner.keys() {
            *counts.entry(*epoch).or_insert(0) += 1;
        }
        let mut complete: Vec<u64> = counts
            .into_iter()
            .filter(|(_, n)| *n == self.nprocs)
            .map(|(e, _)| e)
            .collect();
        complete.sort_unstable_by(|a, b| b.cmp(a));
        if complete.len() <= keep {
            return;
        }
        let floor = complete[keep - 1];
        let mut evicted: Vec<u64> = inner
            .keys()
            .map(|(e, _)| *e)
            .filter(|e| *e < floor)
            .collect();
        evicted.sort_unstable();
        evicted.dedup();
        inner.retain(|(e, _), _| *e >= floor);
        self.cuts_evicted
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
    }

    /// Soft-budget pressure: shrink to the single newest complete cut (and
    /// anything newer still in flight), regardless of the configured
    /// retention.  No-op on an unbounded store.
    pub fn evict_under_pressure(&self) {
        if self.nprocs == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        self.enforce_retention(&mut inner, 1);
    }

    /// Decodes the stored image of `proc` at `epoch`, if present.
    ///
    /// The store normally holds only bytes it encoded itself, but decode
    /// remains a trust boundary (a persisted or transported store could
    /// hand back damaged bytes): an image that no longer decodes is
    /// treated as absent, which steers recovery toward an older complete
    /// cut instead of panicking mid-restore.
    pub fn image(&self, epoch: u64, proc: u16) -> Option<NodeImage> {
        let bytes = self.inner.lock().unwrap().get(&(epoch, proc)).cloned()?;
        NodeImage::from_bytes(&bytes).ok()
    }

    /// Newest epoch for which all `nprocs` processes hold an image — the
    /// rollback target of a recovery.
    pub fn last_complete_epoch(&self, nprocs: usize) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for (epoch, _) in inner.keys() {
            *counts.entry(*epoch).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .filter(|(_, n)| *n == nprocs)
            .map(|(e, _)| e)
            .max()
    }

    /// Highest epoch any process deposited an image for (possibly an
    /// incomplete cut).
    pub fn max_epoch(&self) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .keys()
            .map(|(epoch, _)| *epoch)
            .max()
    }

    /// Drops every image above `epoch`: a failed attempt may have deposited
    /// a partial (inconsistent) cut that must not mix with the next
    /// attempt's images.
    pub fn prune_above(&self, epoch: u64) {
        self.inner.lock().unwrap().retain(|(e, _), _| *e <= epoch);
    }

    /// Images deposited over the store's lifetime (across attempts).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken.load(Ordering::Relaxed)
    }

    /// Total encoded bytes deposited over the store's lifetime.
    pub fn bytes_snapshotted(&self) -> u64 {
        self.bytes_snapshotted.load(Ordering::Relaxed)
    }

    /// Epochs evicted by the retention bound over the store's lifetime.
    pub fn cuts_evicted(&self) -> u64 {
        self.cuts_evicted.load(Ordering::Relaxed)
    }

    /// Encoded bytes currently resident (after eviction).
    pub fn checkpoint_bytes_live(&self) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .values()
            .map(|b| b.len() as u64)
            .sum()
    }

    /// Encoded bytes currently resident for one process's images.
    pub fn bytes_live_for(&self, proc: ProcId) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|((_, p), _)| *p == proc.0)
            .map(|(_, b)| b.len() as u64)
            .sum()
    }
}

/// Serializes this node's image into the store, charging the per-word
/// checkpoint cost.  No-op when checkpointing is off.
pub(crate) fn take_checkpoint(st: &mut NodeCore) {
    let Some(store) = st.ckpt.clone() else {
        return;
    };
    // The dominant serialization work is copying resident page data.
    let words: u64 = st
        .pages
        .pages()
        .map(|p| st.pages.frame(p).map_or(0, |f| f.data.len() as u64))
        .sum();
    let c = st.cfg.costs;
    st.clock
        .add(OverheadCat::Base, words * c.checkpoint_per_word);
    let img = snapshot(st);
    store.put(img.epoch, st.proc.0, img.to_bytes());
}

/// True when every multi-writer write notice for pages homed here is
/// covered by an applied diff — the only in-flight traffic at a release.
fn mw_settled(st: &NodeCore) -> bool {
    if st.cfg.protocol != Protocol::MultiWriter {
        return true;
    }
    for (page, seen) in &st.mw_seen {
        if st.home_of(*page) != st.proc {
            continue;
        }
        for (writer, idx) in seen {
            let applied = st
                .mw_home
                .get(page)
                .and_then(|h| h.applied.get(writer))
                .copied()
                .unwrap_or(0);
            if applied < *idx {
                return false;
            }
        }
    }
    true
}

/// Acknowledges a pending barrier checkpoint once the node is quiescent.
/// Called at release application and again from the diff-flush handler
/// (the deferred case).  The snapshot itself is taken at commit time
/// ([`on_ckpt_go`]): the ack/commit round carries each node's virtual
/// clock through the master and back, so an image taken at the commit
/// embeds the epoch's full clock synchronization — a restored node can
/// never resume with a clock behind where the fault-free run stood.
///
/// # Errors
///
/// Propagates send failures from the acknowledgement.
pub(crate) fn maybe_complete(st: &mut NodeCore, node: &Node) -> Result<(), DsmError> {
    let Some(epoch) = st.pending_ckpt else {
        return Ok(());
    };
    if !mw_settled(st) {
        return Ok(());
    }
    st.pending_ckpt = None;
    st.phase_strike(cvm_net::ProtocolPhase::CkptWindow)?;
    let me = st.proc;
    let master = st.master;
    if me == master {
        on_ckpt_ack(st, node, epoch)
    } else {
        st.send_msg(&node.sender, master, &Msg::CkptAck { from: me, epoch })
    }
}

/// Master: one node's checkpoint acknowledgement.  When every process is
/// quiescent and ready the cut can commit; broadcast the commit.
///
/// # Errors
///
/// Propagates send failures from the `CkptGo` broadcast, and the protocol
/// error from the master's own commit.
pub(crate) fn on_ckpt_ack(st: &mut NodeCore, node: &Node, epoch: u64) -> Result<(), DsmError> {
    let nprocs = st.cfg.nprocs;
    let acks = st.ckpt_acks.entry(epoch).or_insert(0);
    *acks += 1;
    if *acks < nprocs {
        return Ok(());
    }
    st.ckpt_acks.remove(&epoch);
    // Pipelined detection: the cut must not commit before its epoch's
    // detection drains — the commit then carries the drained reports so
    // every image matches the synchronous run's race log at this cut.
    if st
        .barrier
        .as_ref()
        .is_some_and(|master| master.pipe.is_some())
    {
        return crate::pipeline::commit_or_gate(st, node, epoch);
    }
    let me = st.proc;
    for p in (0..nprocs as u16).map(ProcId).filter(|p| *p != me) {
        st.send_msg(
            &node.sender,
            p,
            &Msg::CkptGo {
                epoch,
                races: Vec::new(),
                term: st.seat_term,
            },
        )?;
    }
    on_ckpt_go(st, epoch, Vec::new())
}

/// The commit: every node is quiescent, so snapshot this node's image
/// (its clock now carries the ack/commit round's synchronization) and
/// release the application thread held at the barrier.  A node that dies
/// before processing the commit simply leaves the epoch incomplete —
/// recovery then rolls back one epoch further, which is still a
/// consistent cut.
///
/// In pipelined runs the commit carries any race reports whose detection
/// drained between the cut being requested and committed; they join the
/// race log *before* the snapshot so the image matches a synchronous
/// run's.  Synchronous commits always pass an empty list.
///
/// # Errors
///
/// [`DsmError::Protocol`] if no application thread is waiting.
pub(crate) fn on_ckpt_go(
    st: &mut NodeCore,
    epoch: u64,
    races: Vec<cvm_race::RaceReport>,
) -> Result<(), DsmError> {
    debug_assert_eq!(st.epoch, epoch, "checkpoint commit for a stale epoch");
    st.race_log.extend(races);
    take_checkpoint(st);
    let Some(tx) = st.barrier_wait.take() else {
        return Err(DsmError::Protocol {
            context: "checkpoint commit without a waiting arrival",
        });
    };
    let _ = tx.send(());
    // The fresh image is the one allocation in this path; meter it after
    // the release so a budget failure drains the cluster instead of
    // wedging the barrier.
    st.check_budget()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DsmConfig, RecoveryPolicy};
    use crate::replay::ReplayCursor;
    use cvm_page::GAddr;
    use cvm_race::{RaceKind, RaceReport};
    use cvm_vclock::IntervalStamp;
    use proptest::prelude::*;

    fn hydrated_core() -> NodeCore {
        let mut cfg = DsmConfig::new(3);
        cfg.protocol = Protocol::MultiWriter;
        cfg.recovery = RecoveryPolicy::Recover { max_attempts: 2 };
        cfg.record_sync = true;
        let mut st = NodeCore::new(cfg, ProcId(1));
        st.pages.install(
            PageId(4),
            Frame::from_data(vec![7; st.cfg.geometry.page_words], Protection::Write),
        );
        st.pages.install_zeroed(PageId(7), Protection::Read);
        st.vc.set(ProcId(0), 3);
        st.vc.set(ProcId(1), 5);
        st.cur.index = 6;
        st.cur.stamp_vc = st.vc.clone();
        st.cur.stamp_vc.set(ProcId(1), 6);
        let stamp = IntervalStamp::new(IntervalId::new(ProcId(1), 5), st.vc.clone());
        let rec = Interval::new(stamp, vec![PageId(4)], vec![PageId(7)]);
        st.log.insert(rec.id(), Arc::new(rec));
        st.unsent_own.push(IntervalId::new(ProcId(1), 5));
        let mut bm = PageBitmaps::new(st.cfg.geometry.page_words);
        bm.write.set(3);
        st.bitmaps
            .insert(IntervalId::new(ProcId(1), 5), PageId(4), bm);
        st.home_owner.insert(PageId(4), ProcId(2));
        st.mw_home.insert(
            PageId(4),
            MwHome {
                applied: [(ProcId(0), 2)].into_iter().collect(),
                waiting: Vec::new(),
                local_waiter: None,
            },
        );
        st.mw_seen.insert(PageId(4), vec![(ProcId(0), 2)]);
        st.locks.insert(
            3,
            LockLocal {
                have_token: true,
                held: false,
                successor: None,
                waiter: None,
                release_vc: Some(st.vc.clone()),
            },
        );
        st.lock_mgr.insert(4, LockMgr { last: ProcId(2) });
        st.race_log.extend([RaceReport {
            addr: GAddr(cvm_page::SHARED_BASE + 8),
            kind: RaceKind::WriteWrite,
            a: IntervalId::new(ProcId(0), 2),
            b: IntervalId::new(ProcId(1), 3),
            epoch: 1,
        }]);
        st.det_stats.intervals_total = 11;
        st.det_stats.races_found = 1;
        st.sched_rec.record(3, ProcId(1));
        st.sched_rec.record(3, ProcId(0));
        st.stats.barriers = 2;
        st.stats.shared_writes = 40;
        st.epoch = 2;
        st.clock.add(OverheadCat::Base, 12_345);
        st.clock.add(OverheadCat::Bitmaps, 67);
        st
    }

    /// Deterministic digest of the restorable slice of a core.
    fn state_hash(st: &NodeCore) -> Vec<u8> {
        snapshot(st).to_bytes()
    }

    #[test]
    fn image_roundtrips_through_wire() {
        let st = hydrated_core();
        let img = snapshot(&st);
        let decoded = NodeImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(img, decoded);
    }

    #[test]
    fn restore_reproduces_pre_kill_state_hash() {
        let st = hydrated_core();
        let img = snapshot(&st);
        let mut fresh = NodeCore::new(st.cfg.clone(), ProcId(1));
        restore(&mut fresh, &img);
        // The restore charge moves the clock; rewind it for the comparison
        // (recovery cost is real, state equality is what is asserted).
        fresh.clock = VirtualClock::from_parts(img.clock_now, {
            let mut cats = [0u64; NCATS];
            cats.copy_from_slice(&img.clock_cats);
            cats
        });
        assert_eq!(state_hash(&st), state_hash(&fresh));
        assert_eq!(fresh.epoch, 2);
        assert_eq!(fresh.resume_epoch, 2);
        assert_eq!(fresh.pages.protection(PageId(4)), Protection::Write);
        assert_eq!(fresh.pages.frame(PageId(4)).unwrap().data[0], 7);
        assert!(fresh.pages.frame(PageId(4)).unwrap().twin.is_none());
    }

    #[test]
    fn restore_positions_replay_cursor() {
        let mut st = hydrated_core();
        let schedule = st.sched_rec.clone();
        st.replay = Some(ReplayCursor::new(schedule.clone()));
        st.replay.as_mut().unwrap().advance(3);
        let img = snapshot(&st);
        assert_eq!(img.replay_pos, vec![(3, 1)]);
        let mut fresh = NodeCore::new(st.cfg.clone(), ProcId(1));
        fresh.replay = Some(ReplayCursor::new(schedule));
        restore(&mut fresh, &img);
        assert_eq!(fresh.replay.as_ref().unwrap().positions(), vec![(3, 1)]);
    }

    #[test]
    fn store_tracks_complete_epochs_and_prunes() {
        let store = CheckpointStore::new();
        assert_eq!(store.last_complete_epoch(2), None);
        store.put(1, 0, vec![1, 2]);
        store.put(1, 1, vec![3]);
        store.put(2, 0, vec![4]);
        assert_eq!(store.last_complete_epoch(2), Some(1));
        assert_eq!(store.max_epoch(), Some(2));
        assert_eq!(store.checkpoints_taken(), 3);
        assert_eq!(store.bytes_snapshotted(), 4);
        store.prune_above(1);
        assert_eq!(store.max_epoch(), Some(1));
        store.put(2, 0, vec![5]);
        store.put(2, 1, vec![6]);
        assert_eq!(store.last_complete_epoch(2), Some(2));
    }

    #[test]
    fn retention_keeps_newest_complete_cuts() {
        let store = CheckpointStore::with_retention(2, 2);
        for epoch in 1..=4u64 {
            store.put(epoch, 0, vec![0; 8]);
            store.put(epoch, 1, vec![0; 8]);
        }
        // Epochs 3 and 4 survive; 1 and 2 were evicted as newer complete
        // cuts arrived.
        assert_eq!(store.last_complete_epoch(2), Some(4));
        assert!(!store.inner.lock().unwrap().contains_key(&(2, 0)));
        assert!(store.inner.lock().unwrap().contains_key(&(3, 0)));
        assert_eq!(store.cuts_evicted(), 2);
        // Two retained epochs, two images each, 8 bytes apiece.
        assert_eq!(store.checkpoint_bytes_live(), 32);
        // Lifetime counters ignore eviction.
        assert_eq!(store.checkpoints_taken(), 8);
        assert_eq!(store.bytes_snapshotted(), 8 * 8);
    }

    #[test]
    fn retention_never_evicts_inflight_partial_cuts() {
        let store = CheckpointStore::with_retention(1, 2);
        store.put(1, 0, vec![1]);
        store.put(1, 1, vec![2]);
        store.put(2, 0, vec![3]);
        store.put(2, 1, vec![4]);
        // Epoch 3 is partial (in flight): it must survive even though only
        // one complete cut is retained.
        store.put(3, 0, vec![5]);
        assert_eq!(store.last_complete_epoch(2), Some(2));
        let present = |e, p| store.inner.lock().unwrap().contains_key(&(e, p));
        assert!(!present(1, 0));
        assert!(present(2, 0));
        assert!(present(3, 0));
        assert_eq!(store.bytes_live_for(ProcId(0)), 2);
        assert_eq!(store.bytes_live_for(ProcId(1)), 1);
    }

    #[test]
    fn pressure_eviction_shrinks_to_one_complete_cut() {
        let store = CheckpointStore::with_retention(3, 2);
        for epoch in 1..=3u64 {
            store.put(epoch, 0, vec![0; 4]);
            store.put(epoch, 1, vec![0; 4]);
        }
        let present = |s: &CheckpointStore, e, p| s.inner.lock().unwrap().contains_key(&(e, p));
        assert!(present(&store, 1, 0));
        store.evict_under_pressure();
        assert!(!present(&store, 1, 0));
        assert!(!present(&store, 2, 0));
        assert_eq!(store.last_complete_epoch(2), Some(3));
        // An unbounded store ignores pressure entirely.
        let unbounded = CheckpointStore::new();
        unbounded.put(1, 0, vec![1]);
        unbounded.evict_under_pressure();
        assert!(present(&unbounded, 1, 0));
    }

    #[test]
    fn mw_settled_gates_on_watermarks() {
        let mut st = hydrated_core();
        // PageId(4) % 3 == 1 == st.proc: homed here.  seen (0,2) vs
        // applied (0,2): settled.
        assert!(mw_settled(&st));
        st.mw_seen.insert(PageId(4), vec![(ProcId(0), 3)]);
        assert!(!mw_settled(&st));
        st.mw_home
            .get_mut(&PageId(4))
            .unwrap()
            .applied
            .insert(ProcId(0), 3);
        assert!(mw_settled(&st));
        // Pages homed elsewhere never gate.
        st.mw_seen.insert(PageId(5), vec![(ProcId(0), 99)]);
        assert!(mw_settled(&st));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn encode_restore_encode_is_identity(
            page_words in prop_oneof![Just(64usize), Just(128usize)],
            frames in proptest::collection::vec(
                (0u32..16, 0u8..3, 0u64..u64::MAX), 0..6),
            vc_raw in proptest::collection::vec(0u32..50, 3),
            locks in proptest::collection::vec((0u32..8, any::<bool>()), 0..5),
            epoch in 0u64..40,
            notices in proptest::collection::vec((0u32..16, 0u32..16), 0..5),
        ) {
            let mut vc_data = VClock::new(3);
            for (i, x) in vc_raw.into_iter().enumerate() {
                vc_data.set(ProcId(i as u16), x);
            }
            let mut cfg = DsmConfig::new(3);
            cfg.geometry.page_words = page_words;
            cfg.recovery = RecoveryPolicy::Recover { max_attempts: 1 };
            let mut st = NodeCore::new(cfg.clone(), ProcId(2));
            for (page, prot, word) in &frames {
                let prot = prot_from_u8(*prot).unwrap();
                let mut data = vec![0u64; page_words];
                data[0] = *word;
                st.pages.install(PageId(*page), Frame::from_data(data, prot));
            }
            st.vc = vc_data.clone();
            st.cur.stamp_vc = vc_data;
            for (lock, tok) in &locks {
                st.locks.insert(*lock, LockLocal {
                    have_token: *tok,
                    held: false,
                    successor: None,
                    waiter: None,
                    release_vc: None,
                });
            }
            for (k, (w, r)) in notices.iter().enumerate() {
                let index = k as u32 + 1;
                let id = IntervalId::new(ProcId(2), index);
                let mut vc = st.vc.clone();
                vc.set(ProcId(2), index);
                let stamp = IntervalStamp::new(id, vc);
                let rec = Interval::new(stamp, vec![PageId(*w)], vec![PageId(*r)]);
                st.log.insert(id, Arc::new(rec));
            }
            st.epoch = epoch;

            let img = snapshot(&st);
            let bytes = img.to_bytes();
            let decoded = NodeImage::from_bytes(&bytes).unwrap();
            let mut fresh = NodeCore::new(cfg, ProcId(2));
            restore(&mut fresh, &decoded);
            // The restore charge moves the clock; rewind it so the bytes
            // compare state, not recovery cost.
            fresh.clock = VirtualClock::from_parts(decoded.clock_now, {
                let mut cats = [0u64; NCATS];
                cats.copy_from_slice(&decoded.clock_cats);
                cats
            });
            // encode(restore(encode(img))) == encode(img): the image is a
            // fixed point of the snapshot/restore pair.
            let reimg = snapshot(&fresh);
            prop_assert_eq!(&img.to_bytes()[..], &reimg.to_bytes()[..]);
            // And the wire codec itself roundtrips.
            prop_assert_eq!(img, decoded);
        }
    }
}
