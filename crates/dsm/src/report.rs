//! Run reports: everything the evaluation harness reads.

use std::time::Duration;

use cvm_net::StatsSnapshot;
use cvm_page::SegmentMap;
use cvm_race::{DetectorStats, RaceLog};
use cvm_vclock::ProcId;

use crate::node::NodeStats;
use crate::replay::SyncSchedule;
use crate::simtime::{CLOCK_HZ, NCATS};

/// One §6.1 watchpoint hit: an access site touching the watched address in
/// the watched epoch during a replay run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchHit {
    /// Accessing process.
    pub proc: ProcId,
    /// Access-site id (the modelled program counter).
    pub site: u32,
    /// Whether the access was a write.
    pub write: bool,
    /// Interval index of the access.
    pub interval: u32,
}

/// Per-node summary.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The process.
    pub proc: ProcId,
    /// Protocol counters.
    pub stats: NodeStats,
    /// Final virtual time (cycles).
    pub cycles: u64,
    /// Virtual cycles attributed per overhead category.
    pub cats: [u64; NCATS],
    /// Dynamic analysis-routine calls for shared data.
    pub shared_calls: u64,
    /// Dynamic analysis-routine calls for private data.
    pub private_calls: u64,
}

/// Checkpoint/recovery activity of one run (all zeros under
/// [`RecoveryPolicy::Abort`](crate::RecoveryPolicy)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Node images deposited in the checkpoint store (across attempts).
    pub checkpoints_taken: u64,
    /// Total encoded bytes of those images.
    pub bytes_snapshotted: u64,
    /// Rollback/restart cycles performed after node failures.
    pub recoveries: u64,
    /// Barrier epochs re-entered after rollbacks (work lost to failures).
    pub epochs_replayed: u64,
    /// Times the barrier-master role moved to a survivor because the
    /// master itself died (see
    /// [`FailoverPolicy`](crate::FailoverPolicy)).
    pub failovers: u64,
    /// Backoff sleeps taken between recovery attempts (exponential with
    /// seeded jitter, so persistent faults cannot spin the attempt loop).
    pub backoff_waits: u64,
    /// Scripted partition windows that reached their heal point and let
    /// traffic flow again (from the reliability layer).
    pub partitions_healed: u64,
    /// Stale-term master messages fenced (dropped, never applied) across
    /// the cluster: an old master talking across a healed partition.
    pub stale_msgs_fenced: u64,
    /// Re-seating rounds abandoned because the would-be master could not
    /// collect a strict majority of handoff acknowledgements.
    pub quorum_losses: u64,
    /// Nodes restored from the agreed checkpoint cut after having been cut
    /// off from the re-seating (the healed old master rejoining at the
    /// current term).
    pub rejoin_restores: u64,
}

/// Resource-governance high-water marks and counters of one run.
///
/// Node-side marks are cluster maxima (the most loaded node); queue and
/// link marks come from the transport; checkpoint counters from the shared
/// store.  All are observability-only: none feed back into protocol
/// decisions, so enabling them costs nothing in virtual time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Max retained interval records on any node.
    pub log_high_water: u64,
    /// Max retained access bitmaps on any node.
    pub bitmap_high_water: u64,
    /// Max estimated retained bytes on any node (budget meter).
    pub retained_bytes_high_water: u64,
    /// Soft-budget crossings that triggered proactive GC, cluster-wide.
    pub soft_gcs: u64,
    /// Deepest credit window (in-flight unacked datagrams) on any link;
    /// bounded by the configured link capacity.
    pub queue_high_water: u64,
    /// Sends that waited for the credit window to reopen.
    pub credit_stalls: u64,
    /// Deepest in-process link queue anywhere in the fabric.
    pub link_high_water: u64,
    /// Checkpoint epochs evicted by the retention bound.
    pub cuts_evicted: u64,
    /// Encoded checkpoint bytes still resident at run end.
    pub checkpoint_bytes_live: u64,
}

/// Everything measured in one cluster run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-node summaries, indexed by process.
    pub nodes: Vec<NodeReport>,
    /// Races reported by the barrier master.
    pub races: RaceLog,
    /// Master's accumulated detector statistics.
    pub det_stats: DetectorStats,
    /// Network statistics (bytes per traffic class).
    pub net: StatsSnapshot,
    /// Reliability-layer statistics (drops, retransmissions, injected
    /// faults) when the run used a lossy wire; `None` on perfect channels.
    pub reliability: Option<cvm_net::ReliabilitySnapshot>,
    /// Shared-segment symbol map.
    pub segments: SegmentMap,
    /// Recorded synchronization schedule (when recording was on).
    pub schedule: SyncSchedule,
    /// §6.1 watchpoint hits (replay runs).
    pub watch_hits: Vec<WatchHit>,
    /// Per-process post-mortem trace logs (empty unless `DsmConfig::trace`).
    pub traces: Vec<Vec<cvm_race::trace::TraceEvent>>,
    /// Checkpoint/recovery activity (zeros when checkpointing is off).
    pub recovery: RecoveryStats,
    /// Resource-governance marks (queues, budgets, eviction).
    pub resources: ResourceStats,
    /// Wall-clock duration of the simulation itself.
    pub wall: Duration,
}

impl RunReport {
    /// Virtual completion time: the latest node clock.
    pub fn virtual_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.cycles).max().unwrap_or(0)
    }

    /// Virtual completion time in seconds (250 MHz Alpha clock).
    pub fn virtual_seconds(&self) -> f64 {
        self.virtual_cycles() as f64 / CLOCK_HZ as f64
    }

    /// Total intervals closed across the cluster.
    pub fn total_intervals(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats.intervals).sum()
    }

    /// Barriers executed (per process; they are global).
    pub fn barriers(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.stats.barriers + n.stats.consolidations)
            .max()
            .unwrap_or(0)
    }

    /// Table 1's "Intervals Per Barrier": average intervals created per
    /// process per barrier epoch.
    pub fn intervals_per_barrier(&self) -> f64 {
        let b = self.barriers();
        if b == 0 || self.nodes.is_empty() {
            return 0.0;
        }
        self.total_intervals() as f64 / (b as f64 * self.nodes.len() as f64)
    }

    /// Cluster-wide overhead cycles per category.
    pub fn cats_total(&self) -> [u64; NCATS] {
        let mut out = [0u64; NCATS];
        for n in &self.nodes {
            for (acc, v) in out.iter_mut().zip(n.cats) {
                *acc += v;
            }
        }
        out
    }

    /// Dynamic analysis-routine calls: `(shared, private)` totals.
    pub fn analysis_calls(&self) -> (u64, u64) {
        let shared = self.nodes.iter().map(|n| n.shared_calls).sum();
        let private = self.nodes.iter().map(|n| n.private_calls).sum();
        (shared, private)
    }

    /// Table 3's "Inst. Accesses Per Second": per-process rates of
    /// instrumented calls, `(shared, private)`, using virtual time.
    pub fn analysis_rates(&self) -> (f64, f64) {
        let secs = self.virtual_seconds() * self.nodes.len() as f64;
        if secs == 0.0 {
            return (0.0, 0.0);
        }
        let (s, p) = self.analysis_calls();
        (s as f64 / secs, p as f64 / secs)
    }

    /// Total faults taken cluster-wide `(read, write)`.
    pub fn faults(&self) -> (u64, u64) {
        (
            self.nodes.iter().map(|n| n.stats.read_faults).sum(),
            self.nodes.iter().map(|n| n.stats.write_faults).sum(),
        )
    }

    /// Pipelined-detection counters `(epochs, stalls)`: epochs whose
    /// comparison ran on the stage thread, and barriers that had to wait
    /// for a still-running previous comparison.  Both zero for the
    /// synchronous master ([`DetectConfig::on`](crate::DetectConfig::on)).
    pub fn pipeline(&self) -> (u64, u64) {
        (
            self.nodes.iter().map(|n| n.stats.pipelined_epochs).sum(),
            self.nodes.iter().map(|n| n.stats.pipeline_stalls).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeStats;
    use crate::simtime::OverheadCat;

    fn node(proc: u16, cycles: u64, intervals: u64, barriers: u64) -> NodeReport {
        NodeReport {
            proc: ProcId(proc),
            stats: NodeStats {
                intervals,
                barriers,
                ..NodeStats::default()
            },
            cycles,
            cats: [cycles, 0, 0, 0, 0, 0],
            shared_calls: 100,
            private_calls: 300,
        }
    }

    fn report(nodes: Vec<NodeReport>) -> RunReport {
        RunReport {
            nodes,
            races: RaceLog::new(),
            det_stats: DetectorStats::default(),
            net: StatsSnapshot::default(),
            reliability: None,
            segments: SegmentMap::default(),
            schedule: SyncSchedule::new(),
            watch_hits: Vec::new(),
            traces: Vec::new(),
            recovery: RecoveryStats::default(),
            resources: ResourceStats::default(),
            wall: Duration::from_secs(0),
        }
    }

    #[test]
    fn virtual_time_is_the_latest_node() {
        let r = report(vec![node(0, 100, 4, 2), node(1, 250, 4, 2)]);
        assert_eq!(r.virtual_cycles(), 250);
        assert!(r.virtual_seconds() > 0.0);
    }

    #[test]
    fn intervals_per_barrier_averages_over_procs_and_barriers() {
        let r = report(vec![node(0, 1, 4, 2), node(1, 1, 4, 2)]);
        // 8 intervals / (2 barriers * 2 procs) = 2.
        assert!((r.intervals_per_barrier() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn intervals_per_barrier_handles_no_barriers() {
        let r = report(vec![node(0, 1, 3, 0)]);
        assert_eq!(r.intervals_per_barrier(), 0.0);
    }

    #[test]
    fn cats_total_sums_across_nodes() {
        let r = report(vec![node(0, 100, 0, 1), node(1, 50, 0, 1)]);
        assert_eq!(r.cats_total()[OverheadCat::Base as usize], 150);
    }

    #[test]
    fn analysis_rates_use_per_process_virtual_seconds() {
        let cycles = crate::simtime::CLOCK_HZ; // Exactly one virtual second.
        let r = report(vec![node(0, cycles, 0, 1), node(1, cycles, 0, 1)]);
        let (shared, private) = r.analysis_rates();
        // 200 shared calls over 2 proc-seconds.
        assert!((shared - 100.0).abs() < 1e-9);
        assert!((private - 300.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report(vec![]);
        assert_eq!(r.virtual_cycles(), 0);
        assert_eq!(r.analysis_rates(), (0.0, 0.0));
        assert_eq!(r.faults(), (0, 0));
    }
}
