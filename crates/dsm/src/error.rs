//! DSM-level errors.

use std::fmt;

use cvm_net::NetError;
use cvm_page::AllocError;

use crate::report::RunReport;

/// Errors surfaced by the DSM to applications and the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsmError {
    /// Shared-segment allocation failed.
    Alloc(AllocError),
    /// A protocol message could not be sent (typically: over the system's
    /// maximum message size, the limitation of §5.3).
    Net(NetError),
    /// A node panicked, was killed, or disconnected mid-run.
    NodeFailed {
        /// The failed process.
        proc: u16,
    },
    /// A blocking protocol operation exceeded the configured
    /// [`op_deadline`](crate::DsmConfig::op_deadline) without any more
    /// specific failure being diagnosed.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
    },
    /// An internal protocol invariant was violated (a message arrived for
    /// state that does not exist) — surfaced instead of panicking so the
    /// cluster can drain.
    Protocol {
        /// What was violated.
        context: &'static str,
    },
    /// A node's retained state crossed the hard
    /// [`MemBudget`](crate::MemBudget) limit even after soft-limit GC —
    /// the run fails cleanly through the first-error path (with a drained
    /// partial report) instead of allocating until the process dies.
    ResourceExhausted {
        /// The node that exceeded its budget.
        node: u16,
        /// The dominant consumer at the moment of exhaustion.
        kind: ResourceKind,
        /// Total retained bytes at the moment of exhaustion.
        bytes: u64,
    },
}

/// Which class of retained state dominated a
/// [`DsmError::ResourceExhausted`] failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Interval records retained for detection/consistency forwarding.
    Records,
    /// Per-interval read/write access bitmaps.
    Bitmaps,
    /// Multi-writer twin pages held for diffing.
    Twins,
    /// This node's live images in the checkpoint store.
    Checkpoints,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Records => write!(f, "interval records"),
            ResourceKind::Bitmaps => write!(f, "access bitmaps"),
            ResourceKind::Twins => write!(f, "twin pages"),
            ResourceKind::Checkpoints => write!(f, "checkpoint images"),
        }
    }
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Alloc(e) => write!(f, "allocation failure: {e}"),
            DsmError::Net(e) => write!(f, "network failure: {e}"),
            DsmError::NodeFailed { proc } => write!(f, "process P{proc} failed"),
            DsmError::Timeout { op } => write!(f, "operation timed out: {op}"),
            DsmError::Protocol { context } => write!(f, "protocol invariant violated: {context}"),
            DsmError::ResourceExhausted { node, kind, bytes } => write!(
                f,
                "process P{node} exhausted its memory budget: {bytes} bytes retained, mostly {kind}"
            ),
        }
    }
}

impl std::error::Error for DsmError {}

/// A failed cluster run: the structured error plus whatever statistics the
/// surviving nodes produced before the drain.
#[derive(Clone, Debug)]
pub struct RunError {
    /// The first failure diagnosed anywhere in the cluster.
    pub error: DsmError,
    /// Partial statistics collected from the drained nodes.
    pub partial: Box<RunReport>,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster run failed: {}", self.error)
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<AllocError> for DsmError {
    fn from(e: AllocError) -> Self {
        DsmError::Alloc(e)
    }
}

impl From<NetError> for DsmError {
    fn from(e: NetError) -> Self {
        DsmError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let a = DsmError::Alloc(AllocError {
            requested: 10,
            remaining: 0,
        });
        assert!(a.to_string().contains("allocation"));
        let n = DsmError::Net(NetError::Disconnected);
        assert!(n.to_string().contains("network"));
        assert!(DsmError::NodeFailed { proc: 3 }.to_string().contains("P3"));
        let r = DsmError::ResourceExhausted {
            node: 2,
            kind: ResourceKind::Records,
            bytes: 4096,
        };
        let text = r.to_string();
        assert!(text.contains("P2") && text.contains("4096") && text.contains("interval records"));
        for kind in [
            ResourceKind::Records,
            ResourceKind::Bitmaps,
            ResourceKind::Twins,
            ResourceKind::Checkpoints,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
