//! DSM-level errors.

use std::fmt;

use cvm_net::NetError;
use cvm_page::AllocError;

use crate::report::RunReport;

/// Errors surfaced by the DSM to applications and the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsmError {
    /// Shared-segment allocation failed.
    Alloc(AllocError),
    /// A protocol message could not be sent (typically: over the system's
    /// maximum message size, the limitation of §5.3).
    Net(NetError),
    /// A node panicked, was killed, or disconnected mid-run.
    NodeFailed {
        /// The failed process.
        proc: u16,
    },
    /// A blocking protocol operation exceeded the configured
    /// [`op_deadline`](crate::DsmConfig::op_deadline) without any more
    /// specific failure being diagnosed.
    Timeout {
        /// The operation that timed out.
        op: &'static str,
    },
    /// An internal protocol invariant was violated (a message arrived for
    /// state that does not exist) — surfaced instead of panicking so the
    /// cluster can drain.
    Protocol {
        /// What was violated.
        context: &'static str,
    },
    /// A node's retained state crossed the hard
    /// [`MemBudget`](crate::MemBudget) limit even after soft-limit GC —
    /// the run fails cleanly through the first-error path (with a drained
    /// partial report) instead of allocating until the process dies.
    ResourceExhausted {
        /// The node that exceeded its budget.
        node: u16,
        /// The dominant consumer at the moment of exhaustion.
        kind: ResourceKind,
        /// Total retained bytes at the moment of exhaustion.
        bytes: u64,
    },
    /// The run was cancelled from outside through a
    /// [`CancelToken`](crate::CancelToken): an orderly externally-requested
    /// abort, not a fault.  Supervisors treat it as neither retryable nor a
    /// failure of the workload.
    Cancelled,
    /// A re-seating master could not collect handoff acknowledgements
    /// from a strict majority of the configured nodes: it is on the
    /// minority side of a partition and must not drive detection.  Named
    /// (instead of a generic [`DsmError::Timeout`]) so supervisors can
    /// tell "the cluster lost quorum" from "an operation was slow", and
    /// never retried within the attempt — a minority stays a minority
    /// until the partition heals.
    QuorumLost {
        /// Handoff acknowledgements collected (the would-be master's own
        /// seat included).
        got: usize,
        /// Strict majority of the configured cluster.
        needed: usize,
    },
    /// Durable-state I/O failed: the service's write-ahead journal or
    /// snapshot could not be opened, appended, or compacted.  Owned storage
    /// going bad is not fixed by re-running the same workload, so the
    /// variant classifies as terminal; the failing path and OS error are
    /// carried as text because `std::io::Error` is neither `Clone` nor
    /// `Eq`.
    Persist {
        /// What the persistence layer was doing when the I/O failed.
        context: String,
    },
}

impl DsmError {
    /// Whether a supervisor should treat this failure as *transient* —
    /// plausibly absent on a retry of the identical run — or terminal.
    ///
    /// Transient: node deaths (injected kills, peers declared dead by the
    /// reliability layer, partitions exhausting the retransmit budget),
    /// operation deadline expiries, and memory-budget exhaustion (another
    /// placement of the same run may stay under the budget; a co-scheduled
    /// load spike certainly can).  A vanished wire endpoint
    /// ([`NetError::Disconnected`]) is the raw form of a node death and
    /// classifies with it.
    ///
    /// Terminal: protocol invariant violations (deterministically
    /// reproduced by an identical retry), allocation failures and oversized
    /// messages (config errors), and external cancellation (retrying would
    /// defeat the cancel).
    pub fn is_transient(&self) -> bool {
        match self {
            DsmError::NodeFailed { .. }
            | DsmError::Timeout { .. }
            | DsmError::ResourceExhausted { .. }
            | DsmError::Net(NetError::Disconnected)
            | DsmError::Net(NetError::PeerDead { .. }) => true,
            DsmError::Protocol { .. }
            | DsmError::Alloc(_)
            | DsmError::Net(NetError::MsgTooLarge { .. })
            | DsmError::Net(NetError::Empty)
            | DsmError::Cancelled
            | DsmError::QuorumLost { .. }
            | DsmError::Persist { .. } => false,
        }
    }
}

/// Which class of retained state dominated a
/// [`DsmError::ResourceExhausted`] failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceKind {
    /// Interval records retained for detection/consistency forwarding.
    Records,
    /// Per-interval read/write access bitmaps.
    Bitmaps,
    /// Multi-writer twin pages held for diffing.
    Twins,
    /// This node's live images in the checkpoint store.
    Checkpoints,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Records => write!(f, "interval records"),
            ResourceKind::Bitmaps => write!(f, "access bitmaps"),
            ResourceKind::Twins => write!(f, "twin pages"),
            ResourceKind::Checkpoints => write!(f, "checkpoint images"),
        }
    }
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Alloc(e) => write!(f, "allocation failure: {e}"),
            DsmError::Net(e) => write!(f, "network failure: {e}"),
            DsmError::NodeFailed { proc } => write!(f, "process P{proc} failed"),
            DsmError::Timeout { op } => write!(f, "operation timed out: {op}"),
            DsmError::Protocol { context } => write!(f, "protocol invariant violated: {context}"),
            DsmError::ResourceExhausted { node, kind, bytes } => write!(
                f,
                "process P{node} exhausted its memory budget: {bytes} bytes retained, mostly {kind}"
            ),
            DsmError::Cancelled => write!(f, "run cancelled"),
            DsmError::QuorumLost { got, needed } => write!(
                f,
                "master seat lost quorum: {got} of {needed} required handoff acknowledgements"
            ),
            DsmError::Persist { context } => write!(f, "durable state I/O failed: {context}"),
        }
    }
}

impl std::error::Error for DsmError {}

/// A failed cluster run: the structured error plus whatever statistics the
/// surviving nodes produced before the drain.
#[derive(Clone, Debug)]
pub struct RunError {
    /// The first failure diagnosed anywhere in the cluster.
    pub error: DsmError,
    /// Partial statistics collected from the drained nodes.
    pub partial: Box<RunReport>,
}

impl RunError {
    /// Supervisor-facing classification of the underlying [`DsmError`]:
    /// see [`DsmError::is_transient`].
    pub fn is_transient(&self) -> bool {
        self.error.is_transient()
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster run failed: {}", self.error)
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<AllocError> for DsmError {
    fn from(e: AllocError) -> Self {
        DsmError::Alloc(e)
    }
}

impl From<NetError> for DsmError {
    fn from(e: NetError) -> Self {
        DsmError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let a = DsmError::Alloc(AllocError {
            requested: 10,
            remaining: 0,
        });
        assert!(a.to_string().contains("allocation"));
        let n = DsmError::Net(NetError::Disconnected);
        assert!(n.to_string().contains("network"));
        assert!(DsmError::NodeFailed { proc: 3 }.to_string().contains("P3"));
        let r = DsmError::ResourceExhausted {
            node: 2,
            kind: ResourceKind::Records,
            bytes: 4096,
        };
        let text = r.to_string();
        assert!(text.contains("P2") && text.contains("4096") && text.contains("interval records"));
        for kind in [
            ResourceKind::Records,
            ResourceKind::Bitmaps,
            ResourceKind::Twins,
            ResourceKind::Checkpoints,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        assert!(DsmError::Cancelled.to_string().contains("cancelled"));
        let q = DsmError::QuorumLost { got: 1, needed: 2 };
        assert!(q.to_string().contains("quorum") && q.to_string().contains("1 of 2"));
        let p = DsmError::Persist {
            context: "append journal.bin: disk full".into(),
        };
        assert!(p.to_string().contains("durable") && p.to_string().contains("disk full"));
    }

    #[test]
    fn transient_classification_covers_fault_shapes() {
        // Injected kills surface as node deaths in three wire shapes.
        assert!(DsmError::NodeFailed { proc: 1 }.is_transient());
        assert!(DsmError::Net(NetError::Disconnected).is_transient());
        assert!(DsmError::Net(NetError::PeerDead {
            peer: cvm_vclock::ProcId(2)
        })
        .is_transient());
        // Deadline expiries and budget exhaustion are load-dependent.
        assert!(DsmError::Timeout { op: "lock acquire" }.is_transient());
        assert!(DsmError::ResourceExhausted {
            node: 0,
            kind: ResourceKind::Twins,
            bytes: 1 << 20,
        }
        .is_transient());
    }

    #[test]
    fn terminal_classification_covers_deterministic_shapes() {
        // Protocol violations reproduce identically on a retry.
        assert!(!DsmError::Protocol {
            context: "bad state"
        }
        .is_transient());
        // Config errors: a message over the system max stays over it.
        assert!(!DsmError::Net(NetError::MsgTooLarge { size: 9, max: 8 }).is_transient());
        assert!(!DsmError::Alloc(AllocError {
            requested: 10,
            remaining: 0,
        })
        .is_transient());
        // Cancellation is a decision, not a fault.
        assert!(!DsmError::Cancelled.is_transient());
        // A minority cannot vote itself into a majority by retrying.
        assert!(!DsmError::QuorumLost { got: 1, needed: 2 }.is_transient());
        // Bad owned storage stays bad across retries of the same workload.
        assert!(!DsmError::Persist {
            context: "open journal.bin: permission denied".into(),
        }
        .is_transient());
    }

    #[test]
    fn run_error_delegates_classification() {
        let partial = || {
            Box::new(RunReport {
                nodes: Vec::new(),
                races: cvm_race::RaceLog::new(),
                det_stats: cvm_race::DetectorStats::default(),
                net: cvm_net::StatsSnapshot::default(),
                reliability: None,
                segments: cvm_page::SegmentMap::default(),
                schedule: crate::replay::SyncSchedule::new(),
                watch_hits: Vec::new(),
                traces: Vec::new(),
                recovery: crate::report::RecoveryStats::default(),
                resources: crate::report::ResourceStats::default(),
                wall: std::time::Duration::ZERO,
            })
        };
        let transient = RunError {
            error: DsmError::NodeFailed { proc: 0 },
            partial: partial(),
        };
        assert!(transient.is_transient());
        let terminal = RunError {
            error: DsmError::Cancelled,
            partial: partial(),
        };
        assert!(!terminal.is_transient());
    }
}
