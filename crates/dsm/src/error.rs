//! DSM-level errors.

use std::fmt;

use cvm_net::NetError;
use cvm_page::AllocError;

/// Errors surfaced by the DSM to applications and the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsmError {
    /// Shared-segment allocation failed.
    Alloc(AllocError),
    /// A protocol message could not be sent (typically: over the system's
    /// maximum message size, the limitation of §5.3).
    Net(NetError),
    /// A node panicked or disconnected mid-run.
    NodeFailed {
        /// The failed process.
        proc: u16,
    },
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Alloc(e) => write!(f, "allocation failure: {e}"),
            DsmError::Net(e) => write!(f, "network failure: {e}"),
            DsmError::NodeFailed { proc } => write!(f, "process P{proc} failed"),
        }
    }
}

impl std::error::Error for DsmError {}

impl From<AllocError> for DsmError {
    fn from(e: AllocError) -> Self {
        DsmError::Alloc(e)
    }
}

impl From<NetError> for DsmError {
    fn from(e: NetError) -> Self {
        DsmError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let a = DsmError::Alloc(AllocError {
            requested: 10,
            remaining: 0,
        });
        assert!(a.to_string().contains("allocation"));
        let n = DsmError::Net(NetError::Disconnected);
        assert!(n.to_string().contains("network"));
        assert!(DsmError::NodeFailed { proc: 3 }.to_string().contains("P3"));
    }
}
