//! Pipelined detection epochs: overlap comparison with computation.
//!
//! In the synchronous design the barrier master runs all of detection —
//! pair enumeration, the bitmap round, and word-level comparison — between
//! the last arrival and the release, so every node idles at the barrier for
//! the full detection epoch.  With [`DetectConfig::pipelined`] the master
//! instead releases the barrier as soon as epoch *N*'s consistency
//! information has settled (clocks merged, missing records fanned out) and
//! hands the epoch's interval records to a dedicated **stage thread**,
//! which runs the `cvm-race` comparison for epoch *N* while the nodes are
//! already computing epoch *N+1*.
//!
//! ```text
//!            barrier N          barrier N+1         barrier N+2
//! app     ───┤compute N├──────┤compute N+1├───────┤compute N+2├──
//! release     ▲ immediately    ▲ + races(N)        ▲ + races(N+1)
//! stage        └─[plan N]─[bitmap round N]─[compare N]┐
//!                                └─[plan N+1]─ ... ───┘
//! ```
//!
//! **Deferred-delivery ordering rule.**  Epoch *N*'s reports ride the
//! *N+1* release (or, for the final epoch, the run-end flush), so the
//! master's race log is the concatenation of per-epoch report chunks in
//! epoch order — byte-identical content and ordering to the synchronous
//! run, one epoch late.  The pipeline is depth-1: if barrier *N+1*'s last
//! arrival lands while epoch *N* is still being detected, the release
//! *stalls* until the stage drains ([`NodeStats::pipeline_stalls`] counts
//! these).  That bound is what lets every node retain its access bitmaps
//! for exactly one extra epoch (see `apply_release`'s lagged GC) instead
//! of indefinitely.
//!
//! **Checkpoint gating.**  Under [`RecoveryPolicy::Recover`] the commit
//! broadcast for a cut at epoch *N+1* must not outrun epoch *N*'s
//! detection, or the images would lack its races and a recovery would
//! silently drop them.  When every ack is in but the stage is still busy,
//! the master parks the cut in `ckpt_gate`; when detection drains, the
//! deferred reports are drained into the [`Msg::CkptGo`] broadcast itself,
//! so every image carries exactly the race log a synchronous run would
//! have at that cut.
//!
//! [`DetectConfig::pipelined`]: crate::DetectConfig::pipelined
//! [`NodeStats::pipeline_stalls`]: crate::NodeStats::pipeline_stalls
//! [`RecoveryPolicy::Recover`]: crate::RecoveryPolicy::Recover
//! [`Msg::CkptGo`]: crate::msg::Msg::CkptGo

use std::collections::HashMap;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_race::{
    filter_first_races, BitmapStore, DetectionPlan, EpochArena, EpochDetector, Interval, RaceReport,
};
use cvm_vclock::{IntervalId, ProcId, VClock};

use crate::config::DetectConfig;
use crate::error::DsmError;
use crate::fault::SERVICE_POLL;
use crate::msg::Msg;
use crate::node::NodeCore;
use crate::pages::Node;
use crate::simtime::OverheadCat;

/// Work orders handed from the master's service/arrival path to the stage
/// thread.
pub(crate) enum Job {
    /// A settled epoch: plan (unlocked), then start the bitmap round.
    Detect {
        /// The epoch the records belong to (captured before the release
        /// advanced `NodeCore::epoch`).
        epoch: u64,
        /// Every interval record of the epoch (shared with senders' logs).
        records: Vec<Arc<Interval>>,
    },
    /// Every bitmap reply is in: run the word-level comparison.
    Compare(Box<Inflight>),
}

/// An epoch whose plan is built and whose bitmap round is in flight.
pub(crate) struct Inflight {
    epoch: u64,
    records: Vec<Arc<Interval>>,
    plan: DetectionPlan,
    store: BitmapStore,
    pending_replies: usize,
}

/// A settled barrier held back by the depth-1 stage: the arrival vector
/// and the epoch's records, replayed the moment the stage drains.
type StalledBarrier = (Vec<(ProcId, VClock)>, Vec<Arc<Interval>>);

/// Master-side pipeline bookkeeping (lives inside `BarrierMaster`; present
/// only when the run is pipelined).
pub(crate) struct PipelineState {
    /// Hands jobs to the stage thread.
    tx: Sender<Job>,
    /// Epochs handed to the stage but not yet completed (0 or 1).
    pending: usize,
    /// Completed `(epoch, reports)` chunks awaiting delivery.
    deferred: Vec<(u64, Vec<RaceReport>)>,
    /// A barrier whose last arrival landed while the stage was busy.
    stalled: Option<StalledBarrier>,
    /// A fully-acked checkpoint cut waiting for detection to drain.
    ckpt_gate: Option<u64>,
    /// Whether any completed epoch reported races (first-races-only gate:
    /// deferred reports are not yet in `race_log`, so emptiness of the log
    /// alone would re-admit later epochs' races).
    any_races: bool,
    /// The epoch whose bitmap round is outstanding, if any.
    inflight: Option<Inflight>,
}

impl PipelineState {
    pub(crate) fn new(tx: Sender<Job>) -> Self {
        PipelineState {
            tx,
            pending: 0,
            deferred: Vec::new(),
            stalled: None,
            ckpt_gate: None,
            any_races: false,
            inflight: None,
        }
    }
}

impl std::fmt::Debug for PipelineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineState")
            .field("pending", &self.pending)
            .field("deferred_epochs", &self.deferred.len())
            .field("stalled", &self.stalled.is_some())
            .field("ckpt_gate", &self.ckpt_gate)
            .field("any_races", &self.any_races)
            .field("inflight", &self.inflight.is_some())
            .finish()
    }
}

fn pipe_mut(st: &mut NodeCore) -> Result<&mut PipelineState, DsmError> {
    st.barrier
        .as_mut()
        .and_then(|m| m.pipe.as_mut())
        .ok_or(DsmError::Protocol {
            context: "pipeline operation without a pipeline",
        })
}

/// Drains the deferred chunks in epoch order into one flat report list.
/// Single completion point + depth-1 pipeline means the chunks are already
/// ordered; the sort documents (and enforces) the delivery rule.
fn take_deferred(pipe: &mut PipelineState) -> Vec<RaceReport> {
    let mut chunks = std::mem::take(&mut pipe.deferred);
    chunks.sort_by_key(|(epoch, _)| *epoch);
    chunks.into_iter().flat_map(|(_, r)| r).collect()
}

/// All arrivals are in on a pipelined master: release now if the stage is
/// idle, otherwise stall the barrier until the previous epoch drains.
pub(crate) fn pipelined_epoch(
    st: &mut NodeCore,
    node: &Node,
    arrived: Vec<(ProcId, VClock)>,
    records: Vec<Arc<Interval>>,
) -> Result<(), DsmError> {
    let pipe = pipe_mut(st)?;
    if pipe.pending > 0 {
        // Depth-1 pipeline: epoch N+1 cannot release until epoch N's
        // detection drains.  This bounds bitmap retention to one extra
        // epoch and keeps detections completing in epoch order.
        pipe.stalled = Some((arrived, records));
        st.stats.pipeline_stalls += 1;
        return Ok(());
    }
    start_epoch(st, node, arrived, records)
}

/// Releases the barrier immediately (delivering the *previous* epoch's
/// reports) and posts this epoch's records to the stage thread.
fn start_epoch(
    st: &mut NodeCore,
    node: &Node,
    arrived: Vec<(ProcId, VClock)>,
    records: Vec<Arc<Interval>>,
) -> Result<(), DsmError> {
    // Captured before `apply_release` advances it inside `do_release`.
    let epoch = st.epoch;
    let pipe = pipe_mut(st)?;
    let races = take_deferred(pipe);
    // Mark this epoch in flight *before* releasing: with one process the
    // release path completes the checkpoint ack round synchronously, and
    // the cut must see the detection as pending and gate on it.
    pipe.pending += 1;
    let tx = pipe.tx.clone();
    st.stats.pipelined_epochs += 1;
    crate::barrier::do_release(st, node, arrived, records.clone(), races)?;
    tx.send(Job::Detect { epoch, records })
        .map_err(|_| DsmError::Protocol {
            context: "detection stage thread is gone",
        })
}

/// Master: a bitmap reply for the in-flight pipelined epoch.
pub(crate) fn on_bitmap_reply(
    st: &mut NodeCore,
    items: Vec<(IntervalId, (PageId, PageBitmaps))>,
) -> Result<(), DsmError> {
    let pipe = pipe_mut(st)?;
    let Some(inflight) = pipe.inflight.as_mut() else {
        return Err(DsmError::Protocol {
            context: "bitmap reply with no detection in flight",
        });
    };
    for (id, (page, bm)) in items {
        inflight.store.insert(id, page, bm);
    }
    inflight.pending_replies -= 1;
    if inflight.pending_replies == 0 {
        let inflight = pipe.inflight.take().expect("checked above");
        pipe.tx
            .send(Job::Compare(Box::new(inflight)))
            .map_err(|_| DsmError::Protocol {
                context: "detection stage thread is gone",
            })?;
    }
    Ok(())
}

/// Master: every checkpoint ack is in.  Commit the cut now if detection
/// has drained, otherwise park it until `complete_detection` drains.
pub(crate) fn commit_or_gate(st: &mut NodeCore, node: &Node, epoch: u64) -> Result<(), DsmError> {
    let pipe = pipe_mut(st)?;
    if pipe.pending > 0 {
        pipe.ckpt_gate = Some(epoch);
        return Ok(());
    }
    commit_cut(st, node, epoch)
}

/// Commits a gated (or immediately committable) cut: any reports that
/// completed after the releases went out ride the commit broadcast, so
/// every image carries the race log a synchronous run would have here.
fn commit_cut(st: &mut NodeCore, node: &Node, epoch: u64) -> Result<(), DsmError> {
    let races = {
        let pipe = pipe_mut(st)?;
        take_deferred(pipe)
    };
    let nprocs = st.cfg.nprocs;
    let me = st.proc;
    for p in (0..nprocs as u16).map(ProcId).filter(|p| *p != me) {
        st.send_msg(
            &node.sender,
            p,
            &Msg::CkptGo {
                epoch,
                races: races.clone(),
                term: st.seat_term,
            },
        )?;
    }
    crate::checkpoint::on_ckpt_go(st, epoch, races)
}

/// How many epochs the stage still owes.  The run-end flush polls this.
pub(crate) fn pending_epochs(st: &NodeCore) -> usize {
    st.barrier
        .as_ref()
        .and_then(|m| m.pipe.as_ref())
        .map_or(0, |p| p.pending)
}

/// Run-end flush: deliver any still-deferred reports into the master's
/// race log (epoch-ascending), completing the deferred-delivery rule for
/// the final epoch.
pub(crate) fn flush_deferred(st: &mut NodeCore) {
    let races = match st.barrier.as_mut().and_then(|m| m.pipe.as_mut()) {
        Some(pipe) => take_deferred(pipe),
        None => return,
    };
    st.race_log.extend(races);
}

/// The stage thread: runs on the master alongside its service thread,
/// consuming [`Job`]s until teardown.  Owns a persistent [`EpochArena`] so
/// steady-state epochs plan and compare without mid-epoch heap allocation.
pub(crate) fn detection_stage(
    node: &Node,
    rx: &Receiver<Job>,
    detect: DetectConfig,
    geometry: Geometry,
) {
    let detector = EpochDetector {
        overlap: detect.overlap,
        enumeration: detect.enumeration,
        workers: detect.workers,
    };
    let mut arena = EpochArena::new();
    loop {
        match rx.recv_timeout(SERVICE_POLL) {
            Ok(job) => {
                let r = match job {
                    Job::Detect { epoch, records } => {
                        if detect.stage_panic_epoch == Some(epoch) {
                            // Scripted fault: a raw panic (not a DsmError)
                            // exercising the stage's catch_unwind
                            // containment in `cluster.rs`.
                            panic!("injected detection-stage panic at epoch {epoch}");
                        }
                        run_detect(node, &detector, epoch, records, &mut arena)
                    }
                    Job::Compare(inflight) => {
                        run_compare(node, &detector, *inflight, &mut arena, geometry)
                    }
                };
                if let Err(err) = r {
                    if node.ctl.tearing_down() {
                        return;
                    }
                    node.ctl.fail(err);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if node.ctl.tearing_down() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Stage: steps 2–4 for one epoch.  The expensive pair enumeration runs
/// with the node unlocked — concurrent with the next epoch's computation
/// and message handling — and only the cheap bookkeeping (cost charges,
/// local bitmap gathering, request sends) takes the lock.
fn run_detect(
    node: &Node,
    detector: &EpochDetector,
    epoch: u64,
    records: Vec<Arc<Interval>>,
    arena: &mut EpochArena,
) -> Result<(), DsmError> {
    let plan = detector.plan_with(&records, arena);

    let mut st = node.state.lock();
    st.phase_strike(cvm_net::ProtocolPhase::BitmapRound)?;
    let c = st.cfg.costs;
    let geometry = st.cfg.geometry;
    st.clock.add(
        OverheadCat::Intervals,
        plan.stats.pair_comparisons * c.vv_compare,
    );
    let mut per_proc: HashMap<ProcId, Vec<(IntervalId, PageId)>> = HashMap::new();
    for (id, page) in plan.bitmap_requests() {
        per_proc.entry(id.proc).or_default().push((id, page));
    }
    let mut store = BitmapStore::new();
    // The master's own bitmaps are local; the lagged release GC retained
    // them one extra epoch exactly for this read.
    if let Some(own) = per_proc.remove(&st.proc) {
        for (id, page) in own {
            let bm = st
                .bitmaps
                .get(id, page)
                .expect("own bitmap requested but not retained")
                .clone();
            store.insert(id, page, bm);
        }
    }
    let pending = per_proc.len();
    let inflight = Inflight {
        epoch,
        records,
        plan,
        store,
        pending_replies: pending,
    };
    if pending == 0 {
        drop(st);
        return run_compare(node, detector, inflight, arena, geometry);
    }
    // Register before sending: replies land on the service thread, which
    // cannot run while this thread holds the node lock.
    pipe_mut(&mut st)?.inflight = Some(inflight);
    let reqs: Vec<(ProcId, Msg)> = per_proc
        .into_iter()
        .map(|(p, items)| (p, Msg::BitmapReq { items }))
        .collect();
    for (p, msg) in reqs {
        st.send_msg(&node.sender, p, &msg)?;
    }
    Ok(())
}

/// Stage: step 5 for one epoch — word-level comparison (unlocked), then
/// completion bookkeeping under the lock.
fn run_compare(
    node: &Node,
    detector: &EpochDetector,
    mut inflight: Inflight,
    arena: &mut EpochArena,
    geometry: Geometry,
) -> Result<(), DsmError> {
    {
        // Scripted-strike window: "mid-compare" on the stage thread.
        let mut st = node.state.lock();
        st.phase_strike(cvm_net::ProtocolPhase::PipelinedCompare)?;
    }
    let reports = detector
        .compare_with(
            &mut inflight.plan,
            &inflight.store,
            geometry,
            inflight.epoch,
            arena,
        )
        .map_err(|_| DsmError::Protocol {
            context: "check-listed bitmap missing in pipelined compare",
        })?;
    let mut st = node.state.lock();
    complete_detection(&mut st, node, inflight, reports)
}

/// An epoch's detection finished: filter, defer the reports, and run
/// whatever was waiting on the stage (a gated cut or a stalled barrier).
fn complete_detection(
    st: &mut NodeCore,
    node: &Node,
    inflight: Inflight,
    reports: Vec<RaceReport>,
) -> Result<(), DsmError> {
    let Inflight {
        epoch,
        records,
        plan,
        ..
    } = inflight;
    let c = st.cfg.costs;
    let blocks = st.cfg.geometry.page_words.div_ceil(64) as u64;
    st.clock.add(
        OverheadCat::Bitmaps,
        plan.stats.bitmap_comparisons * blocks * c.bitmap_block_cmp,
    );

    let already_raced = st
        .barrier
        .as_ref()
        .and_then(|m| m.pipe.as_ref())
        .is_some_and(|p| p.any_races)
        || !st.race_log.is_empty();
    let reports = if st.cfg.detect.first_races_only {
        if already_raced {
            Vec::new()
        } else {
            // All first races live in the earliest racy epoch (§6.4).
            let stamps: HashMap<IntervalId, cvm_vclock::IntervalStamp> =
                records.iter().map(|r| (r.id(), r.stamp.clone())).collect();
            filter_first_races(&reports, &stamps)
        }
    } else {
        reports
    };
    st.det_stats.add(&plan.stats);

    let pipe = pipe_mut(st)?;
    pipe.any_races |= !reports.is_empty();
    pipe.deferred.push((epoch, reports));
    pipe.pending -= 1;
    if pipe.pending > 0 {
        return Ok(());
    }
    // A gated cut and a stalled barrier cannot coexist: the gate means
    // every app thread is held at the commit, so no further arrival could
    // have formed a stall.
    let gate = pipe.ckpt_gate.take();
    let stalled = if gate.is_none() {
        pipe.stalled.take()
    } else {
        None
    };
    if let Some(cut) = gate {
        return commit_cut(st, node, cut);
    }
    if let Some((arrived, records)) = stalled {
        return start_epoch(st, node, arrived, records);
    }
    Ok(())
}
