//! Cluster-wide failure propagation.
//!
//! The original CVM ran over real UDP: peers could die, partitions could
//! form, and the system's end-to-end protocols had to surface that rather
//! than hang.  This module is the reproduction's equivalent: a shared
//! [`ClusterCtl`] carries the *first* failure diagnosed anywhere in the
//! cluster (first error wins; later ones are consequences), plus the
//! teardown flag that distinguishes real failures from the benign send
//! errors of an orderly shutdown.
//!
//! Application threads cannot return errors — the [`ProcHandle`]
//! (crate::ProcHandle) API mirrors CVM's (`read`/`write`/`lock`/`barrier`
//! return values, not `Result`s) — so a failing thread *unwinds* with the
//! private [`DsmUnwind`] sentinel, which `Cluster::run` catches and maps
//! to the recorded [`DsmError`].  A process-wide panic hook filters the
//! sentinel so failure unwinds are silent; genuine application panics
//! still print and propagate.
//!
//! Every blocking protocol wait goes through [`await_signal`] (or the
//! barrier-specific variant), which polls for the reply, watches the
//! failure cell, and enforces the per-operation deadline from
//! [`DsmConfig::op_deadline`](crate::DsmConfig::op_deadline) — so a dead
//! peer converts a would-be deadlock into a structured error within the
//! deadline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use cvm_vclock::ProcId;
use parking_lot::Mutex;

use crate::error::DsmError;
use crate::pages::Node;

/// How often blocked application threads re-check the failure cell.
pub(crate) const APP_POLL: Duration = Duration::from_millis(1);

/// How often idle service threads re-check the teardown flag.
pub(crate) const SERVICE_POLL: Duration = Duration::from_millis(5);

/// External cancellation handle for a running cluster.
///
/// Clone the token, stash it in
/// [`DsmConfig::cancel`](crate::DsmConfig::cancel), and call
/// [`cancel`](CancelToken::cancel) from any thread: every node's service
/// loop polls the flag and routes [`DsmError::Cancelled`] through the
/// run-wide first-error cell, so blocked application threads unwind within
/// one poll interval and `Cluster::run` returns the structured error with
/// a drained partial report — the same orderly path a fault takes, minus
/// the fault.  Cancellation is level-triggered and idempotent; a token
/// cancelled before the run starts stops it at the first service poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every run holding this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Shared run-wide control block: first-failure cell + teardown flag.
#[derive(Debug, Default)]
pub(crate) struct ClusterCtl {
    failure: Mutex<Option<DsmError>>,
    teardown: AtomicBool,
}

impl ClusterCtl {
    pub(crate) fn new() -> Self {
        ClusterCtl::default()
    }

    /// Records `err` if no failure is recorded yet (first error wins —
    /// later errors are downstream consequences of the first).
    pub(crate) fn fail(&self, err: DsmError) {
        let mut cell = self.failure.lock();
        if cell.is_none() {
            *cell = Some(err);
        }
    }

    /// During the seat-announcement round a peer death is a symptom, not
    /// the diagnosis: the seat could not assemble its ack majority.
    /// Replaces a recorded `NodeFailed` with the named `QuorumLost` so a
    /// minority-side master never surfaces a generic failure (or worse, a
    /// raw timeout) for what is structurally a lost quorum.
    pub(crate) fn reclassify_as_quorum_loss(&self, got: usize, needed: usize) {
        let mut cell = self.failure.lock();
        if matches!(*cell, Some(DsmError::NodeFailed { .. })) {
            *cell = Some(DsmError::QuorumLost { got, needed });
        }
    }

    /// The recorded failure, if any.
    pub(crate) fn failure(&self) -> Option<DsmError> {
        self.failure.lock().clone()
    }

    pub(crate) fn failed(&self) -> bool {
        self.failure.lock().is_some()
    }

    /// Marks the start of orderly shutdown: send errors after this point
    /// are expected (peers exit at different times) and must not be
    /// recorded as failures.
    pub(crate) fn begin_teardown(&self) {
        self.teardown.store(true, Ordering::SeqCst);
    }

    pub(crate) fn tearing_down(&self) -> bool {
        self.teardown.load(Ordering::SeqCst)
    }
}

/// Panic payload marking a failure-driven unwind (the real error lives in
/// the [`ClusterCtl`]); filtered by the quiet panic hook.
pub(crate) struct DsmUnwind;

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that silences [`DsmUnwind`]
/// unwinds and delegates everything else to the previous hook.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<DsmUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Unwinds the calling application thread (failure already recorded).
pub(crate) fn unwind() -> ! {
    install_quiet_hook();
    std::panic::panic_any(DsmUnwind);
}

/// Records `err` as the cluster failure and unwinds the calling thread.
pub(crate) fn die(ctl: &ClusterCtl, err: DsmError) -> ! {
    ctl.fail(err);
    unwind();
}

/// Checks an application-side protocol result: `Ok` and teardown-time
/// errors pass, anything else fails the run and unwinds.
///
/// A `Disconnected` send outside teardown means *our own* node's wiring is
/// gone (a scripted kill): report it as this node's death, not a generic
/// network error.
pub(crate) fn check(node: &Node, me: ProcId, result: Result<(), DsmError>) {
    let Err(err) = result else { return };
    if node.ctl.tearing_down() {
        return;
    }
    let err = match err {
        DsmError::Net(cvm_net::NetError::Disconnected) => DsmError::NodeFailed { proc: me.0 },
        other => other,
    };
    die(&node.ctl, err);
}

/// Blocks an application thread on a one-shot reply channel, polling the
/// failure cell and enforcing the operation deadline.
pub(crate) fn await_signal(
    node: &Node,
    rx: &Receiver<()>,
    wait: Duration,
    me: ProcId,
    op: &'static str,
) {
    let limit = Instant::now() + wait;
    loop {
        match rx.recv_timeout(APP_POLL) {
            Ok(()) => return,
            Err(RecvTimeoutError::Timeout) => {
                if node.ctl.failed() {
                    unwind();
                }
                if Instant::now() >= limit {
                    die(&node.ctl, DsmError::Timeout { op });
                }
            }
            // The reply sender vanished without signalling: our node's
            // protocol state was torn down under us.
            Err(RecvTimeoutError::Disconnected) => {
                die(&node.ctl, DsmError::NodeFailed { proc: me.0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_failure_wins() {
        let ctl = ClusterCtl::new();
        assert!(!ctl.failed());
        assert_eq!(ctl.failure(), None);
        ctl.fail(DsmError::NodeFailed { proc: 2 });
        ctl.fail(DsmError::Timeout { op: "late" });
        assert_eq!(ctl.failure(), Some(DsmError::NodeFailed { proc: 2 }));
    }

    #[test]
    fn teardown_flag_latches() {
        let ctl = ClusterCtl::new();
        assert!(!ctl.tearing_down());
        ctl.begin_teardown();
        assert!(ctl.tearing_down());
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        clone.cancel();
        assert!(t.is_cancelled(), "cancellation visible through all clones");
    }
}
