//! Per-node protocol state and the shared-memory access path.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::Sender;
use cvm_instrument::AnalysisRuntime;
use cvm_net::wire::Wire;
use cvm_net::{NetSender, Packet, ProtocolPhase, TrafficClass};
use cvm_page::{Diff, GAddr, PageBitmaps, PageId, PageStore, Protection};
use cvm_race::{BitmapStore, Interval, RaceLog};
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};

use crate::config::{DsmConfig, Protocol, WriteDetection};
use crate::msg::Msg;
use crate::replay::{ReplayCursor, SyncSchedule};
use crate::report::WatchHit;
use crate::simtime::{OverheadCat, VirtualClock};

/// The interval currently being accumulated by a process.
#[derive(Debug)]
pub(crate) struct OpenInterval {
    /// Interval index (own clock entry at close).
    pub index: u32,
    /// Vector timestamp snapshotted at interval begin.
    pub stamp_vc: VClock,
    /// Pages written this interval (write notices at close).
    pub dirty: BTreeSet<PageId>,
    /// Pages read this interval (read notices at close; detection only).
    pub read: BTreeSet<PageId>,
    /// Word-granularity access bitmaps (detection only).
    pub bitmaps: HashMap<PageId, PageBitmaps>,
}

/// Local state of one lock.
#[derive(Debug, Default)]
pub(crate) struct LockLocal {
    /// This node holds the token (may grant without the manager).
    pub have_token: bool,
    /// The application currently holds the lock.
    pub held: bool,
    /// The next process in the distributed queue, waiting for our release.
    pub successor: Option<(ProcId, VClock)>,
    /// Application thread blocked in `lock()`.
    pub waiter: Option<Sender<()>>,
    /// The releaser's clock at its most recent `unlock()` of this lock.
    ///
    /// Happens-before-1 orders the acquirer after the *release*, not after
    /// the grant: a grant sent later (when the forwarded request arrives)
    /// must carry only the knowledge the releaser had at the unlock.
    /// Shipping the granter's current clock would impose extra ordering
    /// and hide races that follow the unlock — e.g. Water's unlocked
    /// virial update, which sits between the last unlock and the barrier.
    pub release_vc: Option<VClock>,
}

/// Manager-side state of one lock (only at `lock % nprocs`).
#[derive(Debug)]
pub(crate) struct LockMgr {
    /// Last process the token was forwarded towards (tail of the queue).
    pub last: ProcId,
}

/// A queued remote page request that cannot be serviced yet (single-writer
/// ownership is in flight).
#[derive(Debug)]
pub(crate) enum QueuedPageReq {
    /// A forwarded read-copy request.
    Read(ProcId),
    /// A forwarded ownership request (always last in the queue).
    Own(ProcId),
}

/// Diff watermarks a fetch is gated on: `(writer, interval index)` pairs.
pub(crate) type DiffNeeds = Vec<(ProcId, u32)>;

/// Multi-writer master-copy bookkeeping at the page home.
#[derive(Debug, Default)]
pub(crate) struct MwHome {
    /// Highest interval index applied per writer.
    pub applied: HashMap<ProcId, u32>,
    /// Fetches waiting for diffs to arrive: `(requester, needed)`.
    pub waiting: Vec<(ProcId, DiffNeeds)>,
    /// Local application thread waiting for diffs (home's own fault).
    pub local_waiter: Option<(Sender<()>, DiffNeeds)>,
}

/// Plain counters of protocol activity.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Intervals closed.
    pub intervals: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Consolidations (barrier machinery run for lock-only programs, §6.3).
    pub consolidations: u64,
    /// Lock acquisitions satisfied locally (token cached).
    pub locks_local: u64,
    /// Lock acquisitions requiring messages.
    pub locks_remote: u64,
    /// Read faults taken.
    pub read_faults: u64,
    /// Write faults taken.
    pub write_faults: u64,
    /// Pages sent to other nodes (copies or ownership transfers).
    pub pages_sent: u64,
    /// Diffs created (multi-writer).
    pub diffs_made: u64,
    /// Total words across created diffs.
    pub diff_words: u64,
    /// Remote interval records applied.
    pub records_applied: u64,
    /// Shared reads performed.
    pub shared_reads: u64,
    /// Shared writes performed.
    pub shared_writes: u64,
    /// High-water mark of retained interval records (GC boundedness).
    pub log_high_water: u64,
    /// High-water mark of retained access bitmaps (GC boundedness).
    pub bitmap_high_water: u64,
    /// High-water mark of estimated retained bytes across all metered
    /// classes (records, bitmaps, twins, checkpoint images).
    pub retained_bytes_high_water: u64,
    /// Soft-budget crossings that triggered proactive GC.
    pub soft_gcs: u64,
    /// Barrier epochs whose detection ran overlapped on the pipeline stage
    /// (master only; zero in synchronous mode).
    pub pipelined_epochs: u64,
    /// Barriers that stalled waiting for the previous epoch's detection to
    /// drain (master only; the depth-1 pipeline was full).
    pub pipeline_stalls: u64,
}

/// Mutable state of one node, shared between its application thread and its
/// service thread.
pub(crate) struct NodeCore {
    pub cfg: DsmConfig,
    pub proc: ProcId,
    pub clock: VirtualClock,
    pub pages: PageStore,
    /// Last *closed* interval index per process (own entry included).
    pub vc: VClock,
    pub cur: OpenInterval,
    /// Known interval records (own and received), for lock grants.
    /// `Arc`-shared: grants and barrier fan-out reference these records
    /// instead of deep-cloning them per receiver.
    pub log: BTreeMap<IntervalId, Arc<Interval>>,
    /// Own records not yet shipped at a barrier.
    pub unsent_own: Vec<IntervalId>,
    /// Retained access bitmaps for own intervals (until checked).
    pub bitmaps: BitmapStore,
    pub analysis: AnalysisRuntime,
    /// Single-writer: current owner of pages homed here.
    pub home_owner: HashMap<PageId, ProcId>,
    /// Pages with a local fault in flight (waiting app thread).
    pub page_wait: HashMap<PageId, Sender<()>>,
    /// Pages whose ownership just arrived for a local write that has not
    /// executed yet; remote requests stay deferred until it does (closes
    /// the steal window between reply processing and the app's retry).
    pub pending_local_write: std::collections::HashSet<PageId>,
    /// Remote requests deferred until local ownership arrives.
    pub page_queue: HashMap<PageId, VecDeque<QueuedPageReq>>,
    /// Multi-writer home state for pages homed here.
    pub mw_home: HashMap<PageId, MwHome>,
    /// Multi-writer: highest write-notice interval seen per page/writer.
    pub mw_seen: HashMap<PageId, Vec<(ProcId, u32)>>,
    pub locks: HashMap<u32, LockLocal>,
    pub lock_mgr: HashMap<u32, LockMgr>,
    /// Barrier master state (present only on the node currently seated as
    /// master — proc 0 on a fresh start, a survivor after failover).
    pub barrier: Option<crate::barrier::BarrierMaster>,
    /// The barrier master's seat: every arrival, checkpoint ack, and
    /// bitmap reply is addressed here.  `ProcId(0)` on a fresh start;
    /// re-seated by failover (see
    /// [`FailoverPolicy`](crate::FailoverPolicy)).
    pub master: ProcId,
    /// Monotone master-seat term this node has adopted: 0 for the initial
    /// seating, bumped by every accepted `MasterHandoff`.  Master-originated
    /// messages carry the issuing term; anything below this value is a
    /// stale master talking across a healed partition and is fenced.
    pub seat_term: u64,
    /// Stale-term master messages fenced (dropped, never applied) by this
    /// node.  Not part of the checkpoint image — it is diagnostic
    /// telemetry, summed into `RunReport.recovery.stale_msgs_fenced`.
    pub stale_msgs_fenced: u64,
    /// Master only: `MasterHandoffAck`s collected while announcing a
    /// failover seat change.
    pub handoff_acks: usize,
    /// Scripted protocol-window strikes armed for this node: `(phase,
    /// hit)` pairs from the fault plan's `KillAtPhase` events.
    pub phase_kills: Vec<(ProtocolPhase, u64)>,
    /// Times this node has entered each protocol window (indexed by
    /// [`ProtocolPhase::index`]); drives the `hit` ordinals above.
    pub phase_counts: [u64; ProtocolPhase::COUNT],
    /// Application thread blocked in `barrier()`.
    pub barrier_wait: Option<Sender<()>>,
    /// Barrier epochs completed.
    pub epoch: u64,
    /// Races detected (authoritative at the master; workers keep the copies
    /// delivered in release messages).
    pub race_log: RaceLog,
    /// Detector statistics (master only).
    pub det_stats: cvm_race::DetectorStats,
    /// Recorded lock-grant order (when recording).
    pub sched_rec: SyncSchedule,
    /// Replay cursor (when replaying).
    pub replay: Option<ReplayCursor>,
    /// Lock requests held back by replay ordering.
    pub replay_pending: HashMap<u32, Vec<(ProcId, VClock)>>,
    pub stats: NodeStats,
    /// §6.1 watchpoint hits.
    pub watch_hits: Vec<WatchHit>,
    /// Post-mortem trace log (when `cfg.trace` is on).
    pub trace: Vec<cvm_race::trace::TraceEvent>,
    /// Trace index of the last `Release` event per lock (for grant
    /// pairing).
    pub trace_last_release: HashMap<u32, u32>,
    /// First barrier epoch the application must actually execute.  Zero on
    /// a fresh start; set by a checkpoint restore so apps using the
    /// epoch-entry API skip already-completed phases.
    pub resume_epoch: u64,
    /// Barrier epoch whose checkpoint is taken but not yet acknowledged:
    /// the app thread stays blocked in `barrier()` until the master's
    /// commit so the snapshot set forms a consistent cut.
    pub pending_ckpt: Option<u64>,
    /// Master only: checkpoint acknowledgements collected per epoch.
    pub ckpt_acks: HashMap<u64, usize>,
    /// Destination for recovery images (present only under
    /// [`RecoveryPolicy::Recover`](crate::RecoveryPolicy)).
    pub ckpt: Option<Arc<crate::checkpoint::CheckpointStore>>,
    /// The merged release clock of the last barrier: every peer's knowledge
    /// is at least this.  Remote consistency state at or below the floor is
    /// redundant (each peer already applied it), so soft-budget GC may drop
    /// it without weakening LRC.  Barrier GC normally leaves nothing below
    /// the floor; the sweep matters after a checkpoint restore.
    pub barrier_floor: VClock,
    /// The *previous* release's GC boundary.  Pipelined detection reads an
    /// epoch's bitmaps after its release has been applied, so release GC
    /// lags bitmap pruning by one boundary (see `apply_release`).
    pub prev_gc_boundary: u32,
}

impl NodeCore {
    pub(crate) fn new(cfg: DsmConfig, proc: ProcId) -> Self {
        let nprocs = cfg.nprocs;
        let mut vc = VClock::new(nprocs);
        let index = 1;
        let mut stamp_vc = vc.clone();
        stamp_vc.set(proc, index);
        let _ = &mut vc;
        NodeCore {
            pages: PageStore::new(cfg.geometry),
            cfg,
            proc,
            clock: VirtualClock::new(),
            vc,
            cur: OpenInterval {
                index,
                stamp_vc,
                dirty: BTreeSet::new(),
                read: BTreeSet::new(),
                bitmaps: HashMap::new(),
            },
            log: BTreeMap::new(),
            unsent_own: Vec::new(),
            bitmaps: BitmapStore::new(),
            analysis: AnalysisRuntime::new(),
            home_owner: HashMap::new(),
            page_wait: HashMap::new(),
            pending_local_write: std::collections::HashSet::new(),
            page_queue: HashMap::new(),
            mw_home: HashMap::new(),
            mw_seen: HashMap::new(),
            locks: HashMap::new(),
            lock_mgr: HashMap::new(),
            barrier: None,
            master: ProcId(0),
            seat_term: 0,
            stale_msgs_fenced: 0,
            handoff_acks: 0,
            phase_kills: Vec::new(),
            phase_counts: [0; ProtocolPhase::COUNT],
            barrier_wait: None,
            epoch: 0,
            race_log: RaceLog::new(),
            det_stats: cvm_race::DetectorStats::default(),
            sched_rec: SyncSchedule::new(),
            replay: None,
            replay_pending: HashMap::new(),
            stats: NodeStats::default(),
            watch_hits: Vec::new(),
            trace: Vec::new(),
            trace_last_release: HashMap::new(),
            resume_epoch: 0,
            pending_ckpt: None,
            ckpt_acks: HashMap::new(),
            ckpt: None,
            barrier_floor: VClock::new(nprocs),
            prev_gc_boundary: 0,
        }
    }

    /// Fences a master-originated message issued under seat term `term`:
    /// returns `true` (and counts the drop) when the term is older than
    /// the seat this node has adopted.  The sender is a stale master
    /// talking across a healed partition; its message must be ignored,
    /// never applied and never a panic.
    pub(crate) fn fence_stale(&mut self, term: u64) -> bool {
        if term < self.seat_term {
            self.stale_msgs_fenced += 1;
            true
        } else {
            false
        }
    }

    /// Counts an entry into protocol window `phase` and fires any armed
    /// `KillAtPhase` strike whose `hit` ordinal matches: the node
    /// self-inflicts [`DsmError::NodeFailed`](crate::DsmError) for itself,
    /// which unwinds through the first-error path exactly like a
    /// wire-detected death.  A no-op when no strikes are armed.
    pub(crate) fn phase_strike(&mut self, phase: ProtocolPhase) -> Result<(), crate::DsmError> {
        let n = self.phase_counts[phase.index()];
        self.phase_counts[phase.index()] = n + 1;
        if self
            .phase_kills
            .iter()
            .any(|&(p, hit)| p == phase && hit == n)
        {
            return Err(crate::DsmError::NodeFailed { proc: self.proc.0 });
        }
        Ok(())
    }

    /// Whether this run defers detection to the master's pipeline stage
    /// (gates the lagged bitmap GC on every node).
    pub(crate) fn detection_pipelined(&self) -> bool {
        self.cfg.detect.pipelined
            && self.cfg.detect.enabled
            && !self.cfg.detect.instrumentation_only
    }

    /// Returns `true` if shared accesses must be tracked at word
    /// granularity (online detection or baseline tracing).
    #[inline]
    pub fn tracking(&self) -> bool {
        self.cfg.detect.enabled || self.cfg.trace
    }

    /// Home node of a page (static distribution).
    #[inline]
    pub fn home_of(&self, page: PageId) -> ProcId {
        ProcId::from_index(page.index() % self.cfg.nprocs)
    }

    /// Manager node of a lock (static distribution).
    #[inline]
    pub fn manager_of(&self, lock: u32) -> ProcId {
        ProcId::from_index(lock as usize % self.cfg.nprocs)
    }

    /// Single-writer: current owner of a page homed *here*.
    pub fn owner_of(&mut self, page: PageId) -> ProcId {
        let home = self.home_of(page);
        debug_assert_eq!(home, self.proc, "owner_of() called off the home node");
        *self.home_owner.entry(page).or_insert(home)
    }

    /// Encodes and transmits a message, charging sender-side costs.
    ///
    /// # Errors
    ///
    /// [`DsmError::Net`] when the wire refuses the message: over the
    /// system maximum (the hard limit that capped the paper's input sizes,
    /// §5.3), or the destination's wiring is gone (a dead or killed node).
    /// Callers propagate instead of panicking so the cluster can drain.
    pub fn send_msg(
        &mut self,
        sender: &NetSender,
        dst: ProcId,
        msg: &Msg,
    ) -> Result<(), crate::error::DsmError> {
        // `wire_size` is arithmetic, so the buffer is allocated exactly
        // once at the right size and never grows during encoding.
        let predicted = msg.wire_size();
        let mut payload = Vec::with_capacity(predicted as usize);
        msg.encode(&mut payload);
        debug_assert_eq!(
            payload.len() as u64,
            predicted,
            "wire_size out of sync with encode for {:?}",
            msg_kind(msg)
        );
        let breakdown = msg.breakdown();
        // Sender-side packetization cost, attributed per class: read-notice
        // bytes are detection overhead ("CVM Mods"), bitmap bytes belong to
        // the extra barrier round, the rest is base protocol cost.
        let c = self.cfg.costs;
        let rn = breakdown.get(TrafficClass::ReadNotice);
        let bm = breakdown.get(TrafficClass::Bitmap);
        let base = breakdown.total() - rn - bm;
        self.clock.add(OverheadCat::Base, base * c.send_per_byte);
        if rn > 0 {
            self.clock.add(OverheadCat::CvmMods, rn * c.send_per_byte);
        }
        if bm > 0 {
            self.clock.add(OverheadCat::Bitmaps, bm * c.send_per_byte);
        }
        sender
            .send(dst, self.clock.now(), breakdown, payload)
            .map_err(crate::error::DsmError::Net)
    }

    /// Synchronizes the clock with an incoming packet.
    pub fn clock_recv(&mut self, pkt: &Packet) {
        let transit = self.cfg.costs.transit(pkt.breakdown.total());
        self.clock.recv(pkt.sent_at, transit);
    }

    /// Closes the current interval: builds its record (write notices from
    /// the dirty set, read notices from the read set), stores its bitmaps,
    /// flushes multi-writer diffs, and advances the closed clock.
    ///
    /// The caller opens the next interval (after any acquire-side merge).
    ///
    /// # Errors
    ///
    /// Propagates send failures from the multi-writer diff flush.
    pub fn close_interval(&mut self, sender: &NetSender) -> Result<(), crate::error::DsmError> {
        let c = self.cfg.costs;
        self.clock.add(OverheadCat::Base, c.interval_setup);
        let detect = self.cfg.detect.enabled && !self.cfg.detect.instrumentation_only;
        if detect {
            self.clock
                .add(OverheadCat::CvmMods, c.interval_detect_extra);
        }

        let id = IntervalId::new(self.proc, self.cur.index);

        // Multi-writer: summarize writes as diffs and flush them home.
        if self.cfg.protocol == Protocol::MultiWriter && !self.cur.dirty.is_empty() {
            self.flush_diffs(sender, id)?;
        }

        let write_notices: Vec<PageId> = self.cur.dirty.iter().copied().collect();
        // Read notices ride on messages only for the online detector; a
        // pure tracing run leaves CVM's messages unmodified.
        let read_notices: Vec<PageId> = if detect {
            self.cur.read.iter().copied().collect()
        } else {
            Vec::new()
        };
        let stamp = IntervalStamp::new(id, self.cur.stamp_vc.clone());
        let record = Interval::new(stamp, write_notices, read_notices);

        if self.cfg.trace && !self.cur.bitmaps.is_empty() {
            let mut pages: Vec<(PageId, PageBitmaps)> = self
                .cur
                .bitmaps
                .iter()
                .map(|(p, bm)| (*p, bm.clone()))
                .collect();
            pages.sort_by_key(|(p, _)| *p);
            self.trace
                .push(cvm_race::trace::TraceEvent::Computation { pages });
        }
        if detect {
            for (page, bm) in self.cur.bitmaps.drain() {
                self.bitmaps.insert(id, page, bm);
            }
        }

        self.log.insert(id, Arc::new(record));
        self.unsent_own.push(id);
        self.vc.set(self.proc, self.cur.index);
        self.stats.intervals += 1;
        self.cur.dirty.clear();
        self.cur.read.clear();
        self.cur.bitmaps.clear();
        self.note_high_water();
        self.check_budget()
    }

    /// Updates the retained-state high-water marks (used to verify that
    /// epoch-boundary garbage collection keeps memory bounded — the system
    /// "only discards trace information when it has been checked for
    /// races", §6.4, and discards it then).
    pub fn note_high_water(&mut self) {
        self.stats.log_high_water = self.stats.log_high_water.max(self.log.len() as u64);
        self.stats.bitmap_high_water = self.stats.bitmap_high_water.max(self.bitmaps.len() as u64);
    }

    /// Estimated bytes retained per metered resource class.
    ///
    /// Records are costed at their wire size (an exact arithmetic figure)
    /// plus a fixed in-memory overhead; bitmaps at two bits per page word;
    /// twins at one page of words; checkpoints at this node's live images
    /// in the shared store.  Estimates only steer the budget — they never
    /// charge virtual time, so the simulated timeline is identical with
    /// and without a budget configured.
    pub(crate) fn retained_breakdown(&self) -> [(crate::error::ResourceKind, u64); 4] {
        use crate::error::ResourceKind;
        const RECORD_OVERHEAD: u64 = 48;
        let record_bytes: u64 = self
            .log
            .values()
            .map(|rec| rec.wire_size() + RECORD_OVERHEAD)
            .sum();
        let page_words = self.cfg.geometry.page_words as u64;
        let bitmap_bytes = self.bitmaps.len() as u64 * (page_words / 4).max(1);
        let twin_bytes = self
            .pages
            .pages()
            .filter(|&p| self.pages.frame(p).is_some_and(|f| f.twin.is_some()))
            .count() as u64
            * page_words
            * 8;
        let ckpt_bytes = self
            .ckpt
            .as_ref()
            .map_or(0, |store| store.bytes_live_for(self.proc));
        [
            (ResourceKind::Records, record_bytes),
            (ResourceKind::Bitmaps, bitmap_bytes),
            (ResourceKind::Twins, twin_bytes),
            (ResourceKind::Checkpoints, ckpt_bytes),
        ]
    }

    /// Re-measures retained state against the configured
    /// [`MemBudget`](crate::MemBudget) and updates the byte high-water
    /// mark.
    ///
    /// Crossing the soft limit triggers one proactive GC pass (see
    /// [`soft_gc`](Self::soft_gc)); still exceeding the hard limit after
    /// GC fails the operation with
    /// [`DsmError::ResourceExhausted`](crate::error::DsmError), which
    /// unwinds through the cluster's first-error path — never a panic.
    ///
    /// # Errors
    ///
    /// [`DsmError::ResourceExhausted`](crate::error::DsmError) when
    /// retained bytes exceed the hard limit even after the soft-GC pass.
    pub fn check_budget(&mut self) -> Result<(), crate::error::DsmError> {
        let total: u64 = self.retained_breakdown().iter().map(|(_, b)| b).sum();
        self.stats.retained_bytes_high_water = self.stats.retained_bytes_high_water.max(total);
        let budget = self.cfg.budget;
        if budget.is_unlimited() || total <= budget.soft_bytes {
            return Ok(());
        }
        self.soft_gc();
        let breakdown = self.retained_breakdown();
        let total: u64 = breakdown.iter().map(|(_, b)| b).sum();
        if total > budget.hard_bytes {
            let (kind, _) = breakdown
                .iter()
                .max_by_key(|(_, b)| *b)
                .copied()
                .expect("breakdown is non-empty");
            return Err(crate::error::DsmError::ResourceExhausted {
                node: self.proc.0,
                kind,
                bytes: total,
            });
        }
        Ok(())
    }

    /// One soft-budget GC pass.
    ///
    /// Barrier-boundary GC already reclaims every remote record at each
    /// release (§6.3), so between barriers the only droppable consistency
    /// state is remote records/bitmaps at or below the barrier floor —
    /// knowledge every peer already holds (normally none; non-empty after
    /// a restore).  The substantive lever is the checkpoint store: evict
    /// down to the newest complete cut.  Own records and bitmaps are never
    /// dropped here — they are unsent or awaiting the master's bitmap
    /// request.
    fn soft_gc(&mut self) {
        self.stats.soft_gcs += 1;
        let me = self.proc;
        let floor = self.barrier_floor.clone();
        self.log
            .retain(|id, _| id.proc == me || id.index > floor.get(id.proc));
        self.bitmaps
            .retain(|(id, _)| id.proc == me || id.index > floor.get(id.proc));
        if let Some(store) = &self.ckpt {
            store.evict_under_pressure();
        }
    }

    /// Opens the next interval with a fresh stamp snapshot.
    pub fn open_interval(&mut self) {
        let index = self.vc.get(self.proc) + 1;
        let mut stamp_vc = self.vc.clone();
        stamp_vc.set(self.proc, index);
        self.cur.index = index;
        self.cur.stamp_vc = stamp_vc;
        debug_assert!(self.cur.dirty.is_empty() && self.cur.read.is_empty());
    }

    fn flush_diffs(
        &mut self,
        sender: &NetSender,
        id: IntervalId,
    ) -> Result<(), crate::error::DsmError> {
        let c = self.cfg.costs;
        let mut by_home: HashMap<ProcId, Vec<Diff>> = HashMap::new();
        let dirty: Vec<PageId> = self.cur.dirty.iter().copied().collect();
        for page in dirty {
            let frame = self
                .pages
                .frame_mut(page)
                .expect("dirty page must be resident");
            let twin = frame.twin.take().expect("dirty page must have a twin");
            let diff = Diff::make(page, &twin, &frame.data);
            self.stats.diffs_made += 1;
            self.stats.diff_words += diff.len() as u64;
            self.clock
                .add(OverheadCat::Base, diff.len() as u64 * c.diff_per_word);
            // Diff-derived write detection (§6.5): the write bitmap is the
            // set of words whose value changed; same-value overwrites are
            // invisible, the documented weaker guarantee.
            if self.cfg.detect.enabled && self.cfg.detect.write_detection == WriteDetection::Diffs {
                let bm = self
                    .cur
                    .bitmaps
                    .entry(page)
                    .or_insert_with(|| PageBitmaps::new(self.cfg.geometry.page_words));
                for w in diff.words() {
                    bm.write.set(w);
                }
            }
            let home = self.home_of(page);
            if home == self.proc {
                // Our frame is the master copy: the writes are already in
                // place; just advance the applied watermark.
                let entry = self.mw_home.entry(page).or_default();
                entry.applied.insert(self.proc, id.index);
            } else {
                by_home.entry(home).or_default().push(diff);
            }
        }
        for (home, diffs) in by_home {
            let msg = Msg::DiffFlush {
                writer: self.proc,
                interval: id.index,
                diffs,
            };
            self.send_msg(sender, home, &msg)?;
        }
        // Home-local watermark changes may unblock queued fetches.
        self.service_mw_waiters(sender)
    }

    /// Applies received interval records: logs them, invalidates pages named
    /// by write notices, and merges the sender's clock.
    pub fn apply_records(&mut self, records: Vec<Arc<Interval>>, sender_vc: &VClock) {
        for rec in records {
            let id = rec.id();
            if id.proc == self.proc || id.index <= self.vc.get(id.proc) {
                continue; // Already known.
            }
            for &page in &rec.write_notices {
                // Single-writer: if we currently hold the page writable we
                // are its owner, and ownership transfers carry the full
                // page contents — the noticed write already reached us
                // through the transfer chain (writers stop writing before
                // transferring away).  Invalidating here would discard the
                // authoritative copy and deadlock the refetch on ourselves.
                let keep = self.cfg.protocol == Protocol::SingleWriter
                    && self.pages.protection(page).writable();
                if !keep {
                    self.pages.invalidate(page);
                }
                if self.cfg.protocol == Protocol::MultiWriter {
                    let seen = self.mw_seen.entry(page).or_default();
                    match seen.iter_mut().find(|(p, _)| *p == id.proc) {
                        Some((_, idx)) => *idx = (*idx).max(id.index),
                        None => seen.push((id.proc, id.index)),
                    }
                }
            }
            self.stats.records_applied += 1;
            self.log.insert(id, rec);
        }
        self.note_high_water();
        // The clock update: everything the sender had closed, we have now
        // (transitively) seen.
        self.vc.merge(sender_vc);
    }

    /// Records above `requester_vc` but within `upper` — the consistency
    /// information a lock grant carries: what the releaser knew *at the
    /// release*, minus what the requester already has.
    pub fn records_between(&self, requester_vc: &VClock, upper: &VClock) -> Vec<Arc<Interval>> {
        self.log
            .values()
            .filter(|rec| {
                let p = rec.id().proc;
                rec.id().index > requester_vc.get(p) && rec.id().index <= upper.get(p)
            })
            .cloned()
            .collect()
    }

    /// Tracks a shared access in the detection structures: notices, the
    /// per-page bitmap bit, and the §6.1 watchpoint.
    pub fn track_access(&mut self, addr: GAddr, page: PageId, word: usize, write: bool, site: u32) {
        let detect = self.cfg.detect;
        if !self.tracking() {
            return;
        }
        let instrument_stores = detect.write_detection == WriteDetection::Instrumentation;
        let c = self.cfg.costs;
        if write && !instrument_stores {
            // §6.5: stores are not instrumented; writes surface via diffs.
        } else {
            self.clock.add(OverheadCat::ProcCall, c.proc_call);
            self.clock.add(OverheadCat::AccessCheck, c.access_check);
            let shared = self.analysis.check(addr);
            debug_assert!(shared);
            if detect.instrumentation_only && !self.cfg.trace {
                // Instrumented binary on unmodified CVM: the analysis call
                // happens, but there is nowhere to record the bit.
                return;
            }
            let bm = self
                .cur
                .bitmaps
                .entry(page)
                .or_insert_with(|| PageBitmaps::new(self.cfg.geometry.page_words));
            if write {
                bm.write.set(word);
            } else {
                bm.read.set(word);
            }
            if write {
                // Notice-list upkeep: the dirty set is maintained by the
                // protocol itself below.
            } else {
                self.cur.read.insert(page);
            }
        }
        if let Some(watch) = detect.watch {
            if watch.addr == addr && watch.epoch == self.epoch {
                self.watch_hits.push(WatchHit {
                    proc: self.proc,
                    site,
                    write,
                    interval: self.cur.index,
                });
            }
        }
    }

    /// Services deferred multi-writer fetches whose needed diffs arrived.
    ///
    /// # Errors
    ///
    /// [`DsmError::Protocol`](crate::error::DsmError::Protocol) if a
    /// waiter-bearing entry vanished mid-scan; send failures propagate.
    pub fn service_mw_waiters(&mut self, sender: &NetSender) -> Result<(), crate::error::DsmError> {
        let pages: Vec<PageId> = self
            .mw_home
            .iter()
            .filter(|(_, h)| !h.waiting.is_empty() || h.local_waiter.is_some())
            .map(|(&p, _)| p)
            .collect();
        for page in pages {
            let satisfied = |applied: &HashMap<ProcId, u32>, needed: &[(ProcId, u32)]| {
                needed
                    .iter()
                    .all(|(p, idx)| applied.get(p).copied().unwrap_or(0) >= *idx)
            };
            // One lookup serves both the remote fetchers and the local
            // waiter; a missing entry is a protocol error, not a panic.
            let (ready, local) = {
                let Some(h) = self.mw_home.get_mut(&page) else {
                    return Err(crate::error::DsmError::Protocol {
                        context: "mw_home entry vanished while servicing waiters",
                    });
                };
                let mut ready = Vec::new();
                h.waiting.retain(|(req, needed)| {
                    if satisfied(&h.applied, needed) {
                        ready.push(*req);
                        false
                    } else {
                        true
                    }
                });
                let local = match &h.local_waiter {
                    Some((_, needed)) if satisfied(&h.applied, needed) => {
                        h.local_waiter.take().map(|(tx, _)| tx)
                    }
                    _ => None,
                };
                (ready, local)
            };
            for req in ready {
                self.reply_mw_fetch(sender, page, req)?;
            }
            // Local waiter (the home's own application thread).
            if let Some(tx) = local {
                // Re-validate the master copy for local use.
                if self.pages.frame(page).is_none() {
                    self.pages.install_zeroed(page, Protection::Read);
                } else {
                    self.pages.protect(page, Protection::Read);
                }
                let _ = tx.send(());
            }
        }
        Ok(())
    }

    /// Sends the master copy of `page` to `req` (multi-writer fetch reply).
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn reply_mw_fetch(
        &mut self,
        sender: &NetSender,
        page: PageId,
        req: ProcId,
    ) -> Result<(), crate::error::DsmError> {
        if self.pages.frame(page).is_none() {
            self.pages.install_zeroed(page, Protection::Read);
        }
        let data = self.pages.frame(page).expect("just ensured").data.to_vec();
        let words = data.len() as u64;
        self.clock
            .add(OverheadCat::Base, words * self.cfg.costs.copy_per_word);
        self.stats.pages_sent += 1;
        self.send_msg(sender, req, &Msg::PageFetchReply { page, data })
    }
}

fn msg_kind(msg: &Msg) -> &'static str {
    match msg {
        Msg::LockReq { .. } => "LockReq",
        Msg::LockFwd { .. } => "LockFwd",
        Msg::LockGrant { .. } => "LockGrant",
        Msg::PageReadReq { .. } => "PageReadReq",
        Msg::PageReadFwd { .. } => "PageReadFwd",
        Msg::PageReadReply { .. } => "PageReadReply",
        Msg::PageOwnReq { .. } => "PageOwnReq",
        Msg::PageOwnFwd { .. } => "PageOwnFwd",
        Msg::PageOwnReply { .. } => "PageOwnReply",
        Msg::PageFetchReq { .. } => "PageFetchReq",
        Msg::PageFetchReply { .. } => "PageFetchReply",
        Msg::DiffFlush { .. } => "DiffFlush",
        Msg::BarrierArrive { .. } => "BarrierArrive",
        Msg::BitmapReq { .. } => "BitmapReq",
        Msg::BitmapReply { .. } => "BitmapReply",
        Msg::BarrierRelease { .. } => "BarrierRelease",
        Msg::CkptAck { .. } => "CkptAck",
        Msg::CkptGo { .. } => "CkptGo",
        Msg::MasterHandoff { .. } => "MasterHandoff",
        Msg::MasterHandoffAck { .. } => "MasterHandoffAck",
        Msg::Shutdown => "Shutdown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_net::{NetConfig, Network};

    fn core_pair() -> (NodeCore, NetSender) {
        let cfg = DsmConfig::new(2);
        let (eps, _) = Network::new(2, NetConfig::default());
        (NodeCore::new(cfg, ProcId(0)), eps[0].sender())
    }

    #[test]
    fn initial_interval_is_one_with_self_stamp() {
        let (core, _) = core_pair();
        assert_eq!(core.cur.index, 1);
        assert_eq!(core.cur.stamp_vc.get(ProcId(0)), 1);
        assert_eq!(core.vc.get(ProcId(0)), 0);
    }

    #[test]
    fn close_and_open_advance_indices() {
        let (mut core, tx) = core_pair();
        core.cur.dirty.insert(PageId(3));
        core.close_interval(&tx).unwrap();
        assert_eq!(core.vc.get(ProcId(0)), 1);
        assert_eq!(core.stats.intervals, 1);
        let rec = core.log.get(&IntervalId::new(ProcId(0), 1)).unwrap();
        assert_eq!(rec.write_notices, vec![PageId(3)]);
        core.open_interval();
        assert_eq!(core.cur.index, 2);
        assert_eq!(core.cur.stamp_vc.get(ProcId(0)), 2);
        assert!(core.cur.dirty.is_empty());
    }

    #[test]
    fn apply_records_invalidates_and_merges() {
        let (mut core, _) = core_pair();
        core.pages.install_zeroed(PageId(7), Protection::Read);
        let rec = cvm_race::make_interval(1, 1, vec![0, 1], &[7], &[]);
        let sender_vc = VClock::from(vec![0, 1]);
        core.apply_records(vec![Arc::new(rec)], &sender_vc);
        assert_eq!(core.pages.protection(PageId(7)), Protection::Invalid);
        assert_eq!(core.vc.get(ProcId(1)), 1);
        assert_eq!(core.stats.records_applied, 1);
        // Re-applying is a no-op.
        let rec2 = cvm_race::make_interval(1, 1, vec![0, 1], &[7], &[]);
        core.apply_records(vec![Arc::new(rec2)], &sender_vc);
        assert_eq!(core.stats.records_applied, 1);
    }

    #[test]
    fn records_between_filters_by_both_clocks() {
        let (mut core, tx) = core_pair();
        core.cur.dirty.insert(PageId(0));
        core.close_interval(&tx).unwrap();
        core.open_interval();
        core.cur.dirty.insert(PageId(1));
        core.close_interval(&tx).unwrap();
        core.open_interval();
        // Requester has seen interval 1 of P0 but not 2; the release knew
        // both.
        let missing = core.records_between(&VClock::from(vec![1, 0]), &VClock::from(vec![2, 0]));
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].id().index, 2);
        // A release older than the requester's knowledge ships nothing.
        assert!(core
            .records_between(&VClock::from(vec![2, 0]), &VClock::from(vec![1, 0]))
            .is_empty());
        // A fully caught-up requester gets nothing either.
        assert!(core
            .records_between(&VClock::from(vec![2, 0]), &VClock::from(vec![2, 0]))
            .is_empty());
    }

    #[test]
    fn home_and_manager_distribution() {
        let (mut core, _) = core_pair();
        assert_eq!(core.home_of(PageId(0)), ProcId(0));
        assert_eq!(core.home_of(PageId(1)), ProcId(1));
        assert_eq!(core.home_of(PageId(2)), ProcId(0));
        assert_eq!(core.manager_of(5), ProcId(1));
        assert_eq!(core.owner_of(PageId(0)), ProcId(0));
    }

    #[test]
    fn track_access_sets_bitmaps_and_notices() {
        let (mut core, _) = core_pair();
        let g = core.cfg.geometry;
        let addr = g.addr_of(PageId(2), 5);
        core.track_access(addr, PageId(2), 5, false, 0);
        assert!(core.cur.read.contains(&PageId(2)));
        assert!(core.cur.bitmaps[&PageId(2)].read.get(5));
        core.track_access(addr, PageId(2), 5, true, 0);
        assert!(core.cur.bitmaps[&PageId(2)].write.get(5));
        assert_eq!(core.analysis.total_calls(), 2);
    }

    #[test]
    fn track_access_disabled_when_detection_off() {
        let mut cfg = DsmConfig::new(2);
        cfg.detect = crate::config::DetectConfig::off();
        let mut core = NodeCore::new(cfg, ProcId(0));
        let g = core.cfg.geometry;
        core.track_access(g.addr_of(PageId(0), 0), PageId(0), 0, false, 0);
        assert!(core.cur.bitmaps.is_empty());
        assert_eq!(core.analysis.total_calls(), 0);
        assert_eq!(core.clock.now(), 0);
    }

    #[test]
    fn hard_budget_exhaustion_surfaces_resource_error() {
        let mut cfg = DsmConfig::new(2);
        cfg.budget = crate::config::MemBudget::exact(1);
        let (eps, _) = Network::new(2, NetConfig::default());
        let mut core = NodeCore::new(cfg, ProcId(0));
        core.cur.dirty.insert(PageId(3));
        let err = core.close_interval(&eps[0].sender()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::DsmError::ResourceExhausted { node: 0, .. }
        ));
        // The soft pass ran (and found nothing droppable) before failing.
        assert_eq!(core.stats.soft_gcs, 1);
        // Own record survives: it is unsent consistency information.
        assert!(core.log.contains_key(&IntervalId::new(ProcId(0), 1)));
    }

    #[test]
    fn soft_gc_drops_only_remote_state_below_floor() {
        let mut cfg = DsmConfig::new(2);
        cfg.budget = crate::config::MemBudget {
            soft_bytes: 1,
            hard_bytes: u64::MAX,
        };
        let (eps, _) = Network::new(2, NetConfig::default());
        let mut core = NodeCore::new(cfg, ProcId(0));
        // A remote record below the floor (as after a restore) and one
        // above it.
        let old = cvm_race::make_interval(1, 2, vec![0, 2], &[7], &[]);
        let new = cvm_race::make_interval(1, 9, vec![0, 9], &[8], &[]);
        core.apply_records(
            vec![Arc::new(old), Arc::new(new)],
            &VClock::from(vec![0, 9]),
        );
        core.barrier_floor = VClock::from(vec![0, 5]);
        core.cur.dirty.insert(PageId(0));
        core.close_interval(&eps[0].sender()).unwrap();
        assert_eq!(core.stats.soft_gcs, 1);
        assert!(!core.log.contains_key(&IntervalId::new(ProcId(1), 2)));
        assert!(core.log.contains_key(&IntervalId::new(ProcId(1), 9)));
        assert!(core.log.contains_key(&IntervalId::new(ProcId(0), 1)));
        assert!(core.stats.retained_bytes_high_water > 0);
    }

    #[test]
    fn unlimited_budget_takes_no_action() {
        let (mut core, tx) = core_pair();
        core.cur.dirty.insert(PageId(1));
        core.close_interval(&tx).unwrap();
        assert_eq!(core.stats.soft_gcs, 0);
        assert!(core.stats.retained_bytes_high_water > 0);
    }

    #[test]
    fn watch_records_hits_in_matching_epoch() {
        let mut cfg = DsmConfig::new(2);
        let g = cfg.geometry;
        let addr = g.addr_of(PageId(0), 3);
        cfg.detect.watch = Some(crate::config::Watch { addr, epoch: 0 });
        let mut core = NodeCore::new(cfg, ProcId(0));
        core.track_access(addr, PageId(0), 3, true, 42);
        core.epoch = 1;
        core.track_access(addr, PageId(0), 3, true, 43);
        assert_eq!(core.watch_hits.len(), 1);
        assert_eq!(core.watch_hits[0].site, 42);
        assert!(core.watch_hits[0].write);
    }
}
