//! CVM: a lazy release consistent software DSM, with integrated
//! on-the-fly data-race detection.
//!
//! This crate is the substrate the paper modified: a user-level DSM in the
//! mould of CVM/TreadMarks.  Each simulated node pairs an *application
//! thread* (running the parallel program against [`ProcHandle`]) with a
//! *service thread* (standing in for CVM's SIGIO-driven message handlers).
//! Nodes exchange real encoded messages over `cvm-net` links.
//!
//! The protocol engine implements:
//!
//! * **Intervals & version vectors** — execution segments delimited by
//!   synchronization, stamped for the constant-time concurrency check;
//! * **Locks** — distributed queue: a static manager per lock forwards
//!   requests to the last holder, grants carry the interval records the
//!   requester lacks (lazy release consistency proper);
//! * **Barriers** — a central master gathers all intervals, runs the race
//!   detector (steps 2–5 of §4), performs the extra bitmap round, and
//!   releases with the missing consistency information;
//! * **Single-writer protocol** (the paper's baseline) — page ownership
//!   through the page's home node, write faults transfer ownership;
//! * **Multi-writer protocol** (home-based, §6.5) — twins and diffs flushed
//!   to the page home at interval close, with optional diff-derived write
//!   detection and its documented weaker guarantee;
//! * **Virtual time** — a deterministic cycle-level cost model attributing
//!   overhead to the paper's Figure 3 categories, driving the slowdown
//!   numbers of Table 1 and Figure 4;
//! * **Synchronization record & replay** (§6.1) — lock-grant order recorded
//!   in a first run can be enforced in a second, enabling access-site
//!   identification of racy instructions.
//!
//! # Examples
//!
//! ```
//! use cvm_dsm::{Cluster, DsmConfig};
//!
//! let report = Cluster::run(
//!     DsmConfig::new(2),
//!     |alloc| alloc.alloc("Flag", 8).unwrap(),
//!     |h, &flag| {
//!         if h.proc() == 0 {
//!             h.write(flag, 1);        // Unsynchronized write...
//!         } else {
//!             let _ = h.read(flag);    // ...against an unsynchronized read.
//!         }
//!         h.barrier();                 // Detection runs here.
//!     },
//! )
//! .expect("healthy run");
//! assert_eq!(report.races.len(), 1);
//! assert!(report.races.reports()[0].render(&report.segments).contains("Flag"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrier;
mod checkpoint;
mod cluster;
mod config;
mod error;
mod fault;
mod handle;
mod locks;
mod msg;
mod node;
mod pages;
mod pipeline;
mod replay;
mod report;
mod simtime;

pub use checkpoint::{CheckpointStore, NodeImage};
pub use cluster::Cluster;
pub use config::{
    DetectConfig, DsmConfig, FailoverPolicy, MemBudget, Protocol, RecoveryPolicy, Watch,
    WriteDetection,
};
pub use cvm_net::{CorruptKind, FaultEvent, FaultPlan, ProtocolPhase, ReliabilitySnapshot};
pub use error::{DsmError, ResourceKind, RunError};
pub use fault::CancelToken;
pub use handle::{EpochStepper, ProcHandle};
pub use msg::Msg;
pub use node::NodeStats;
pub use replay::SyncSchedule;
pub use report::{NodeReport, RecoveryStats, ResourceStats, RunReport, WatchHit};
pub use simtime::{CostModel, OverheadCat, VirtualClock, CLOCK_HZ, NCATS};
