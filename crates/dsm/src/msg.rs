//! Protocol messages.
//!
//! Every message really is encoded to bytes before transmission; the byte
//! breakdown attributes consistency metadata, read notices (the paper's
//! modification ii), page/diff data, and bitmaps (modification iii) to
//! separate traffic classes so the bandwidth-overhead metric of Table 3
//! falls out of the accounting.

use std::sync::Arc;

use cvm_net::wire::{Reader, Wire, WireError};
use cvm_net::{ByteBreakdown, TrafficClass};
use cvm_page::{Diff, PageBitmaps, PageId};
use cvm_race::{Interval, RaceReport};
use cvm_vclock::{IntervalId, ProcId, VClock};

/// All CVM protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Lock request, sent to the lock's manager.
    LockReq {
        /// Lock identifier.
        lock: u32,
        /// Requesting process.
        requester: ProcId,
        /// Requester's clock (so the granter can compute missing records).
        vc: VClock,
    },
    /// Lock request forwarded by the manager to the last holder.
    LockFwd {
        /// Lock identifier.
        lock: u32,
        /// Requesting process.
        requester: ProcId,
        /// Requester's clock.
        vc: VClock,
    },
    /// Lock grant: the token plus the consistency information the
    /// requester lacks.
    LockGrant {
        /// Lock identifier.
        lock: u32,
        /// Interval records unknown to the requester (shared with the
        /// granter's log — cloning the message clones `Arc`s, not records).
        records: Vec<Arc<Interval>>,
        /// The releaser's clock at its release of this lock.
        vc: VClock,
        /// Post-mortem trace pairing: `(releaser, trace index of the
        /// paired Release event)`; only present in tracing runs.
        trace_from: Option<(ProcId, u32)>,
    },
    /// Read-copy request (single-writer), sent to the page home.
    PageReadReq {
        /// Requested page.
        page: PageId,
        /// Faulting process.
        requester: ProcId,
    },
    /// Read-copy request forwarded by the home to the current owner.
    PageReadFwd {
        /// Requested page.
        page: PageId,
        /// Faulting process.
        requester: ProcId,
    },
    /// Page contents for a read fault.
    PageReadReply {
        /// The page.
        page: PageId,
        /// Page contents.
        data: Vec<u64>,
    },
    /// Ownership request (single-writer write fault), sent to the home.
    PageOwnReq {
        /// Requested page.
        page: PageId,
        /// Faulting process.
        requester: ProcId,
    },
    /// Ownership request forwarded by the home to the current owner.
    PageOwnFwd {
        /// Requested page.
        page: PageId,
        /// Faulting process.
        requester: ProcId,
    },
    /// Ownership transfer: page contents + the write token.
    PageOwnReply {
        /// The page.
        page: PageId,
        /// Page contents.
        data: Vec<u64>,
    },
    /// Multi-writer page fetch from the home, gated on the diffs the
    /// requester's clock requires.
    PageFetchReq {
        /// Requested page.
        page: PageId,
        /// Faulting process.
        requester: ProcId,
        /// Minimum `(writer, interval index)` diffs that must be applied
        /// at the home before the reply (write notices already seen).
        needed: Vec<(ProcId, u32)>,
    },
    /// Multi-writer page contents from the home.
    PageFetchReply {
        /// The page.
        page: PageId,
        /// Page contents.
        data: Vec<u64>,
    },
    /// Multi-writer diff flush to a page home at interval close.
    DiffFlush {
        /// Writing process.
        writer: ProcId,
        /// Interval index (of `writer`) the diffs belong to.
        interval: u32,
        /// The diffs for pages homed at the destination.
        diffs: Vec<Diff>,
    },
    /// Barrier arrival: the worker's records since the last barrier.
    BarrierArrive {
        /// Arriving process.
        from: ProcId,
        /// Worker's clock.
        vc: VClock,
        /// Interval records created since the last barrier.
        records: Vec<Arc<Interval>>,
    },
    /// The extra round (modification iii): master asks a node for access
    /// bitmaps named by the check list.
    BitmapReq {
        /// `(interval, page)` bitmaps wanted.
        items: Vec<(IntervalId, PageId)>,
    },
    /// Bitmaps returned to the master.
    BitmapReply {
        /// The bitmaps, in request order.
        items: Vec<(IntervalId, (PageId, PageBitmaps))>,
    },
    /// Barrier release: consistency info the worker lacks + race reports.
    BarrierRelease {
        /// Master's merged clock.
        vc: VClock,
        /// Records the worker has not seen.
        records: Vec<Arc<Interval>>,
        /// Races detected this epoch (one shared copy fanned out to every
        /// receiver).
        races: Arc<Vec<RaceReport>>,
        /// Epoch number just completed.
        epoch: u64,
        /// Master seat term the release was issued under (fencing: a
        /// receiver that has adopted a newer seat drops stale-term
        /// releases instead of applying them).
        term: u64,
    },
    /// Orderly service-thread shutdown.
    Shutdown,
    /// Checkpoint acknowledgement: a node's recovery image for `epoch` is
    /// stored (all diffs it homes are applied).  Sent to the barrier
    /// master, which holds every application thread at the barrier until
    /// the cluster-wide cut is complete.
    CkptAck {
        /// Acknowledging node.
        from: ProcId,
        /// Barrier epoch the image belongs to.
        epoch: u64,
    },
    /// Checkpoint commit: the master has all `nprocs` acknowledgements for
    /// `epoch`; receivers release their barrier-blocked application thread.
    CkptGo {
        /// The committed epoch.
        epoch: u64,
        /// Race reports whose detection drained between the cut being
        /// requested and committed (pipelined mode): receivers fold these
        /// into their race log *before* imaging, so a checkpoint never
        /// commits ahead of its epoch's detection.  Always empty in
        /// synchronous mode, where detection completes inside the barrier.
        races: Vec<RaceReport>,
        /// Master seat term the commit was issued under (fencing).
        term: u64,
    },
    /// Master-seat announcement after a failover: the successor tells
    /// every survivor it now holds the barrier-master role and which
    /// barrier epoch the cluster resumes from (its view of the newest
    /// complete checkpoint cut).  Receivers validate the epoch against
    /// their own restored resume point and acknowledge.
    MasterHandoff {
        /// The node assuming the master role.
        master: ProcId,
        /// The resume epoch: last complete checkpoint cut (0 if none).
        epoch: u64,
        /// The monotone seat term of this seating.  Receivers adopt the
        /// seat only for a term at least as new as their own; an old
        /// master reappearing after a heal carries a stale term and is
        /// fenced, so two masters can never both drive detection.
        term: u64,
    },
    /// Acknowledgement of a [`Msg::MasterHandoff`]: the sender agrees on
    /// the master seat and the resume epoch.  The successor holds the run
    /// until every survivor has acknowledged.
    MasterHandoffAck {
        /// Acknowledging node.
        from: ProcId,
        /// The resume epoch the sender agreed to.
        epoch: u64,
    },
}

const TAG_LOCK_REQ: u8 = 0;
const TAG_LOCK_FWD: u8 = 1;
const TAG_LOCK_GRANT: u8 = 2;
const TAG_PAGE_READ_REQ: u8 = 3;
const TAG_PAGE_READ_FWD: u8 = 4;
const TAG_PAGE_READ_REPLY: u8 = 5;
const TAG_PAGE_OWN_REQ: u8 = 6;
const TAG_PAGE_OWN_FWD: u8 = 7;
const TAG_PAGE_OWN_REPLY: u8 = 8;
const TAG_PAGE_FETCH_REQ: u8 = 9;
const TAG_PAGE_FETCH_REPLY: u8 = 10;
const TAG_DIFF_FLUSH: u8 = 11;
const TAG_BARRIER_ARRIVE: u8 = 12;
const TAG_BITMAP_REQ: u8 = 13;
const TAG_BITMAP_REPLY: u8 = 14;
const TAG_BARRIER_RELEASE: u8 = 15;
const TAG_SHUTDOWN: u8 = 16;
const TAG_CKPT_ACK: u8 = 17;
const TAG_CKPT_GO: u8 = 18;
const TAG_MASTER_HANDOFF: u8 = 19;
const TAG_MASTER_HANDOFF_ACK: u8 = 20;

impl Wire for Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::LockReq {
                lock,
                requester,
                vc,
            } => {
                buf.push(TAG_LOCK_REQ);
                lock.encode(buf);
                requester.encode(buf);
                vc.encode(buf);
            }
            Msg::LockFwd {
                lock,
                requester,
                vc,
            } => {
                buf.push(TAG_LOCK_FWD);
                lock.encode(buf);
                requester.encode(buf);
                vc.encode(buf);
            }
            Msg::LockGrant {
                lock,
                records,
                vc,
                trace_from,
            } => {
                buf.push(TAG_LOCK_GRANT);
                lock.encode(buf);
                records.encode(buf);
                vc.encode(buf);
                trace_from.encode(buf);
            }
            Msg::PageReadReq { page, requester } => {
                buf.push(TAG_PAGE_READ_REQ);
                page.encode(buf);
                requester.encode(buf);
            }
            Msg::PageReadFwd { page, requester } => {
                buf.push(TAG_PAGE_READ_FWD);
                page.encode(buf);
                requester.encode(buf);
            }
            Msg::PageReadReply { page, data } => {
                buf.push(TAG_PAGE_READ_REPLY);
                page.encode(buf);
                data.encode(buf);
            }
            Msg::PageOwnReq { page, requester } => {
                buf.push(TAG_PAGE_OWN_REQ);
                page.encode(buf);
                requester.encode(buf);
            }
            Msg::PageOwnFwd { page, requester } => {
                buf.push(TAG_PAGE_OWN_FWD);
                page.encode(buf);
                requester.encode(buf);
            }
            Msg::PageOwnReply { page, data } => {
                buf.push(TAG_PAGE_OWN_REPLY);
                page.encode(buf);
                data.encode(buf);
            }
            Msg::PageFetchReq {
                page,
                requester,
                needed,
            } => {
                buf.push(TAG_PAGE_FETCH_REQ);
                page.encode(buf);
                requester.encode(buf);
                needed.encode(buf);
            }
            Msg::PageFetchReply { page, data } => {
                buf.push(TAG_PAGE_FETCH_REPLY);
                page.encode(buf);
                data.encode(buf);
            }
            Msg::DiffFlush {
                writer,
                interval,
                diffs,
            } => {
                buf.push(TAG_DIFF_FLUSH);
                writer.encode(buf);
                interval.encode(buf);
                diffs.encode(buf);
            }
            Msg::BarrierArrive { from, vc, records } => {
                buf.push(TAG_BARRIER_ARRIVE);
                from.encode(buf);
                vc.encode(buf);
                records.encode(buf);
            }
            Msg::BitmapReq { items } => {
                buf.push(TAG_BITMAP_REQ);
                items.encode(buf);
            }
            Msg::BitmapReply { items } => {
                buf.push(TAG_BITMAP_REPLY);
                items.encode(buf);
            }
            Msg::BarrierRelease {
                vc,
                records,
                races,
                epoch,
                term,
            } => {
                buf.push(TAG_BARRIER_RELEASE);
                vc.encode(buf);
                records.encode(buf);
                races.encode(buf);
                epoch.encode(buf);
                term.encode(buf);
            }
            Msg::Shutdown => buf.push(TAG_SHUTDOWN),
            Msg::CkptAck { from, epoch } => {
                buf.push(TAG_CKPT_ACK);
                from.encode(buf);
                epoch.encode(buf);
            }
            Msg::CkptGo { epoch, races, term } => {
                buf.push(TAG_CKPT_GO);
                epoch.encode(buf);
                races.encode(buf);
                term.encode(buf);
            }
            Msg::MasterHandoff {
                master,
                epoch,
                term,
            } => {
                buf.push(TAG_MASTER_HANDOFF);
                master.encode(buf);
                epoch.encode(buf);
                term.encode(buf);
            }
            Msg::MasterHandoffAck { from, epoch } => {
                buf.push(TAG_MASTER_HANDOFF_ACK);
                from.encode(buf);
                epoch.encode(buf);
            }
        }
    }

    /// Arithmetic size: every variant is sized without encoding, so the
    /// per-message traffic accounting in the send path costs O(records)
    /// arithmetic instead of a full serialization pass.  Closed forms are
    /// used for vectors of fixed-size elements; everything else sums the
    /// components' own arithmetic `wire_size`s.  `send_msg` checks this
    /// against the real encoding in debug builds.
    fn wire_size(&self) -> u64 {
        fn records_size(records: &[Arc<Interval>]) -> u64 {
            4 + records.iter().map(Wire::wire_size).sum::<u64>()
        }
        let body = match self {
            Msg::LockReq { vc, .. } | Msg::LockFwd { vc, .. } => 4 + 2 + vc.wire_size(),
            Msg::LockGrant {
                records,
                vc,
                trace_from,
                ..
            } => 4 + records_size(records) + vc.wire_size() + trace_from.wire_size(),
            Msg::PageReadReq { .. }
            | Msg::PageReadFwd { .. }
            | Msg::PageOwnReq { .. }
            | Msg::PageOwnFwd { .. } => 4 + 2,
            Msg::PageReadReply { data, .. }
            | Msg::PageOwnReply { data, .. }
            | Msg::PageFetchReply { data, .. } => 4 + 4 + data.len() as u64 * 8,
            Msg::PageFetchReq { needed, .. } => 4 + 2 + 4 + needed.len() as u64 * 6,
            Msg::DiffFlush { diffs, .. } => {
                2 + 4 + 4 + diffs.iter().map(Wire::wire_size).sum::<u64>()
            }
            Msg::BarrierArrive { vc, records, .. } => 2 + vc.wire_size() + records_size(records),
            Msg::BitmapReq { items } => 4 + items.len() as u64 * (6 + 4),
            Msg::BitmapReply { items } => {
                4 + items
                    .iter()
                    .map(|(_, (_, bm))| 6 + 4 + bm.wire_size())
                    .sum::<u64>()
            }
            Msg::BarrierRelease {
                vc, records, races, ..
            } => {
                vc.wire_size()
                    + records_size(records)
                    + 4
                    + races.iter().map(Wire::wire_size).sum::<u64>()
                    + 8
                    + 8
            }
            Msg::Shutdown => 0,
            Msg::CkptAck { .. } => 2 + 8,
            Msg::CkptGo { races, .. } => 8 + 4 + races.iter().map(Wire::wire_size).sum::<u64>() + 8,
            Msg::MasterHandoff { .. } => 2 + 8 + 8,
            Msg::MasterHandoffAck { .. } => 2 + 8,
        };
        1 + body
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        Msg::from_bytes_borrowed(bytes)
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            TAG_LOCK_REQ => Msg::LockReq {
                lock: u32::decode(r)?,
                requester: ProcId::decode(r)?,
                vc: VClock::decode(r)?,
            },
            TAG_LOCK_FWD => Msg::LockFwd {
                lock: u32::decode(r)?,
                requester: ProcId::decode(r)?,
                vc: VClock::decode(r)?,
            },
            TAG_LOCK_GRANT => Msg::LockGrant {
                lock: u32::decode(r)?,
                records: Vec::<Arc<Interval>>::decode(r)?,
                vc: VClock::decode(r)?,
                trace_from: Option::<(ProcId, u32)>::decode(r)?,
            },
            TAG_PAGE_READ_REQ => Msg::PageReadReq {
                page: PageId::decode(r)?,
                requester: ProcId::decode(r)?,
            },
            TAG_PAGE_READ_FWD => Msg::PageReadFwd {
                page: PageId::decode(r)?,
                requester: ProcId::decode(r)?,
            },
            TAG_PAGE_READ_REPLY => Msg::PageReadReply {
                page: PageId::decode(r)?,
                data: Vec::<u64>::decode(r)?,
            },
            TAG_PAGE_OWN_REQ => Msg::PageOwnReq {
                page: PageId::decode(r)?,
                requester: ProcId::decode(r)?,
            },
            TAG_PAGE_OWN_FWD => Msg::PageOwnFwd {
                page: PageId::decode(r)?,
                requester: ProcId::decode(r)?,
            },
            TAG_PAGE_OWN_REPLY => Msg::PageOwnReply {
                page: PageId::decode(r)?,
                data: Vec::<u64>::decode(r)?,
            },
            TAG_PAGE_FETCH_REQ => Msg::PageFetchReq {
                page: PageId::decode(r)?,
                requester: ProcId::decode(r)?,
                needed: Vec::<(ProcId, u32)>::decode(r)?,
            },
            TAG_PAGE_FETCH_REPLY => Msg::PageFetchReply {
                page: PageId::decode(r)?,
                data: Vec::<u64>::decode(r)?,
            },
            TAG_DIFF_FLUSH => Msg::DiffFlush {
                writer: ProcId::decode(r)?,
                interval: u32::decode(r)?,
                diffs: Vec::<Diff>::decode(r)?,
            },
            TAG_BARRIER_ARRIVE => Msg::BarrierArrive {
                from: ProcId::decode(r)?,
                vc: VClock::decode(r)?,
                records: Vec::<Arc<Interval>>::decode(r)?,
            },
            TAG_BITMAP_REQ => Msg::BitmapReq {
                items: Vec::<(IntervalId, PageId)>::decode(r)?,
            },
            TAG_BITMAP_REPLY => Msg::BitmapReply {
                items: Vec::<(IntervalId, (PageId, PageBitmaps))>::decode(r)?,
            },
            TAG_BARRIER_RELEASE => Msg::BarrierRelease {
                vc: VClock::decode(r)?,
                records: Vec::<Arc<Interval>>::decode(r)?,
                races: Arc::<Vec<RaceReport>>::decode(r)?,
                epoch: u64::decode(r)?,
                term: u64::decode(r)?,
            },
            TAG_SHUTDOWN => Msg::Shutdown,
            TAG_CKPT_ACK => Msg::CkptAck {
                from: ProcId::decode(r)?,
                epoch: u64::decode(r)?,
            },
            TAG_CKPT_GO => Msg::CkptGo {
                epoch: u64::decode(r)?,
                races: Vec::<RaceReport>::decode(r)?,
                term: u64::decode(r)?,
            },
            TAG_MASTER_HANDOFF => Msg::MasterHandoff {
                master: ProcId::decode(r)?,
                epoch: u64::decode(r)?,
                term: u64::decode(r)?,
            },
            TAG_MASTER_HANDOFF_ACK => Msg::MasterHandoffAck {
                from: ProcId::decode(r)?,
                epoch: u64::decode(r)?,
            },
            tag => return Err(WireError::BadTag { what: "Msg", tag }),
        })
    }
}

/// Fixed encoded size of the four page request/forward variants:
/// tag + `PageId` + `ProcId`.
const PAGE_REQ_BYTES: usize = 1 + 4 + 2;
/// Fixed encoded size of a checkpoint acknowledgement: tag + `ProcId` +
/// epoch.
const CKPT_ACK_BYTES: usize = 1 + 2 + 8;

impl Msg {
    /// Decodes a message from a borrowed frame body without the generic
    /// length-prefixed [`Reader`] walk where the layout permits.
    ///
    /// Every variant's encoded size is known arithmetically (see
    /// [`Wire::wire_size`]), which this path exploits two ways:
    ///
    /// * **Fixed-size messages** — the page request/forward quartet,
    ///   checkpoint acks, and `Shutdown` — are recognized by `tag` +
    ///   exact length and their fields read straight out of the slice,
    ///   with no cursor, no per-field bounds checks, and no allocation.
    /// * **Bitmap replies**, the detector's hot inbound message, decode
    ///   through a specialized loop that sizes the item vector exactly
    ///   from the validated count prefix; each bitmap's word region is
    ///   then taken with a single bounds check and bulk-converted (see
    ///   `Bitmap`'s wire impl), so the frame parses without intermediate
    ///   `Vec` staging.
    ///
    /// Anything else — and any fixed-size candidate whose length does not
    /// match, so malformed input reports byte-identical errors — falls
    /// back to the generic decoder.  `Msg::from_bytes` delegates here.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, malformed, or oversized
    /// input, exactly as the generic decoder would.
    pub fn from_bytes_borrowed(bytes: &[u8]) -> Result<Msg, WireError> {
        match bytes.first() {
            Some(
                &tag
                @ (TAG_PAGE_READ_REQ | TAG_PAGE_READ_FWD | TAG_PAGE_OWN_REQ | TAG_PAGE_OWN_FWD),
            ) if bytes.len() == PAGE_REQ_BYTES => {
                let page = PageId(u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]));
                let requester = ProcId(u16::from_le_bytes([bytes[5], bytes[6]]));
                Ok(match tag {
                    TAG_PAGE_READ_REQ => Msg::PageReadReq { page, requester },
                    TAG_PAGE_READ_FWD => Msg::PageReadFwd { page, requester },
                    TAG_PAGE_OWN_REQ => Msg::PageOwnReq { page, requester },
                    _ => Msg::PageOwnFwd { page, requester },
                })
            }
            Some(&TAG_CKPT_ACK) if bytes.len() == CKPT_ACK_BYTES => {
                let from = ProcId(u16::from_le_bytes([bytes[1], bytes[2]]));
                let mut e = [0u8; 8];
                e.copy_from_slice(&bytes[3..11]);
                Ok(Msg::CkptAck {
                    from,
                    epoch: u64::from_le_bytes(e),
                })
            }
            Some(&TAG_SHUTDOWN) if bytes.len() == 1 => Ok(Msg::Shutdown),
            Some(&TAG_BITMAP_REPLY) => decode_bitmap_reply(&bytes[1..]),
            _ => {
                let mut r = Reader::new(bytes);
                let msg = Msg::decode(&mut r)?;
                r.finish()?;
                Ok(msg)
            }
        }
    }

    /// Structural validation of a freshly decoded message against the
    /// cluster shape: every process id must be in range and every vector
    /// clock as wide as the cluster.
    ///
    /// Decoding is a trust boundary — the bytes arrived over a wire whose
    /// checksum catches corruption but not forgery or a peer from a
    /// differently-sized cluster — and the service loop indexes directly
    /// with these ids, so an out-of-range value would panic deep inside
    /// the protocol.  A message that fails here is quarantined as a
    /// protocol error, never dispatched.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self, nprocs: usize) -> Result<(), &'static str> {
        fn proc_ok(p: ProcId, n: usize) -> Result<(), &'static str> {
            if p.index() < n {
                Ok(())
            } else {
                Err("process id out of range")
            }
        }
        fn vc_ok(vc: &VClock, n: usize) -> Result<(), &'static str> {
            if vc.len() == n {
                Ok(())
            } else {
                Err("vector clock width mismatch")
            }
        }
        fn id_ok(id: IntervalId, n: usize) -> Result<(), &'static str> {
            proc_ok(id.proc, n)
        }
        fn records_ok(records: &[Arc<Interval>], n: usize) -> Result<(), &'static str> {
            for rec in records {
                id_ok(rec.id(), n)?;
                vc_ok(&rec.stamp.vc, n)?;
            }
            Ok(())
        }
        match self {
            Msg::LockReq { requester, vc, .. } | Msg::LockFwd { requester, vc, .. } => {
                proc_ok(*requester, nprocs)?;
                vc_ok(vc, nprocs)
            }
            Msg::LockGrant {
                records,
                vc,
                trace_from,
                ..
            } => {
                records_ok(records, nprocs)?;
                vc_ok(vc, nprocs)?;
                if let Some((p, _)) = trace_from {
                    proc_ok(*p, nprocs)?;
                }
                Ok(())
            }
            Msg::PageReadReq { requester, .. }
            | Msg::PageReadFwd { requester, .. }
            | Msg::PageOwnReq { requester, .. }
            | Msg::PageOwnFwd { requester, .. } => proc_ok(*requester, nprocs),
            Msg::PageFetchReq {
                requester, needed, ..
            } => {
                proc_ok(*requester, nprocs)?;
                for (p, _) in needed {
                    proc_ok(*p, nprocs)?;
                }
                Ok(())
            }
            Msg::DiffFlush { writer, .. } => proc_ok(*writer, nprocs),
            Msg::BarrierArrive { from, vc, records } => {
                proc_ok(*from, nprocs)?;
                vc_ok(vc, nprocs)?;
                records_ok(records, nprocs)
            }
            Msg::BitmapReq { items } => {
                for (id, _) in items {
                    id_ok(*id, nprocs)?;
                }
                Ok(())
            }
            Msg::BitmapReply { items } => {
                for (id, _) in items {
                    id_ok(*id, nprocs)?;
                }
                Ok(())
            }
            Msg::BarrierRelease {
                vc, records, races, ..
            } => {
                vc_ok(vc, nprocs)?;
                records_ok(records, nprocs)?;
                for race in races.iter() {
                    id_ok(race.a, nprocs)?;
                    id_ok(race.b, nprocs)?;
                }
                Ok(())
            }
            Msg::CkptAck { from, .. } => proc_ok(*from, nprocs),
            Msg::MasterHandoff { master, .. } => proc_ok(*master, nprocs),
            Msg::MasterHandoffAck { from, .. } => proc_ok(*from, nprocs),
            Msg::CkptGo { races, .. } => {
                for race in races {
                    id_ok(race.a, nprocs)?;
                    id_ok(race.b, nprocs)?;
                }
                Ok(())
            }
            Msg::PageReadReply { .. }
            | Msg::PageOwnReply { .. }
            | Msg::PageFetchReply { .. }
            | Msg::Shutdown => Ok(()),
        }
    }

    /// Byte breakdown of this message's encoding for traffic accounting.
    ///
    /// Read notices riding inside interval records are split out as
    /// [`TrafficClass::ReadNotice`] (the detector's bandwidth cost); page
    /// contents and diffs are [`TrafficClass::Data`]; bitmap traffic is
    /// [`TrafficClass::Bitmap`]; the rest of a synchronization message is
    /// [`TrafficClass::Sync`]; pure requests are [`TrafficClass::Control`].
    pub fn breakdown(&self) -> ByteBreakdown {
        let total = self.wire_size();
        match self {
            Msg::LockGrant { records, .. } | Msg::BarrierArrive { records, .. } => {
                let rn: u64 = records.iter().map(|r| r.read_notice_attr_bytes()).sum();
                let mut b = ByteBreakdown::single(TrafficClass::Sync, total - rn);
                b.add(TrafficClass::ReadNotice, rn);
                b
            }
            Msg::BarrierRelease { records, .. } => {
                let rn: u64 = records.iter().map(|r| r.read_notice_attr_bytes()).sum();
                let mut b = ByteBreakdown::single(TrafficClass::Sync, total - rn);
                b.add(TrafficClass::ReadNotice, rn);
                b
            }
            Msg::PageReadReply { data, .. }
            | Msg::PageOwnReply { data, .. }
            | Msg::PageFetchReply { data, .. } => {
                let payload = data.len() as u64 * 8;
                let mut b = ByteBreakdown::single(TrafficClass::Control, total - payload);
                b.add(TrafficClass::Data, payload);
                b
            }
            Msg::DiffFlush { diffs, .. } => {
                let payload: u64 = diffs.iter().map(|d| d.entries.len() as u64 * 12).sum();
                let mut b = ByteBreakdown::single(TrafficClass::Control, total - payload);
                b.add(TrafficClass::Data, payload);
                b
            }
            Msg::BitmapReq { .. } | Msg::BitmapReply { .. } => {
                ByteBreakdown::single(TrafficClass::Bitmap, total)
            }
            Msg::LockReq { .. } | Msg::LockFwd { .. } => {
                ByteBreakdown::single(TrafficClass::Sync, total)
            }
            _ => ByteBreakdown::single(TrafficClass::Control, total),
        }
    }
}

/// Specialized decoder for [`Msg::BitmapReply`] bodies (tag stripped).
///
/// Semantically identical to the generic path — same hostile-length
/// guard, same error values — but the item vector is allocated once at
/// its exact final size and each element decodes in a straight line, so
/// the master's bitmap-collection round never re-allocates mid-frame.
fn decode_bitmap_reply(body: &[u8]) -> Result<Msg, WireError> {
    // A minimal item is an interval id, a page id, and two empty bitmaps
    // (their 4-byte length prefixes): the count guard below rejects any
    // prefix claiming more items than the body could possibly hold.
    const MIN_ITEM_BYTES: u64 = 6 + 4 + (4 + 4);
    let mut r = Reader::new(body);
    let count = u32::decode(&mut r)?;
    let count = r.check_count(u64::from(count), MIN_ITEM_BYTES)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let id = IntervalId::decode(&mut r)?;
        let page = PageId::decode(&mut r)?;
        let bitmaps = PageBitmaps::decode(&mut r)?;
        items.push((id, (page, bitmaps)));
    }
    r.finish()?;
    Ok(Msg::BitmapReply { items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_race::make_interval;

    fn roundtrip(msg: Msg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len() as u64, msg.wire_size(), "{msg:?}");
        assert_eq!(Msg::from_bytes(&bytes).unwrap(), msg);
        // Breakdown must account for every byte.
        assert_eq!(msg.breakdown().total(), bytes.len() as u64, "{msg:?}");
    }

    #[test]
    fn all_messages_roundtrip() {
        let iv = make_interval(1, 3, vec![2, 3], &[1, 2], &[7, 8, 9]);
        roundtrip(Msg::LockReq {
            lock: 5,
            requester: ProcId(1),
            vc: VClock::from(vec![1, 2]),
        });
        roundtrip(Msg::LockFwd {
            lock: 5,
            requester: ProcId(1),
            vc: VClock::from(vec![1, 2]),
        });
        roundtrip(Msg::LockGrant {
            lock: 5,
            records: vec![Arc::new(iv.clone())],
            vc: VClock::from(vec![4, 4]),
            trace_from: Some((ProcId(1), 7)),
        });
        roundtrip(Msg::PageReadReq {
            page: PageId(3),
            requester: ProcId(0),
        });
        roundtrip(Msg::PageReadFwd {
            page: PageId(3),
            requester: ProcId(0),
        });
        roundtrip(Msg::PageReadReply {
            page: PageId(3),
            data: vec![1, 2, 3],
        });
        roundtrip(Msg::PageOwnReq {
            page: PageId(3),
            requester: ProcId(0),
        });
        roundtrip(Msg::PageOwnFwd {
            page: PageId(3),
            requester: ProcId(0),
        });
        roundtrip(Msg::PageOwnReply {
            page: PageId(3),
            data: vec![9; 16],
        });
        roundtrip(Msg::PageFetchReq {
            page: PageId(1),
            requester: ProcId(1),
            needed: vec![(ProcId(0), 4)],
        });
        roundtrip(Msg::PageFetchReply {
            page: PageId(1),
            data: vec![0; 8],
        });
        roundtrip(Msg::DiffFlush {
            writer: ProcId(1),
            interval: 7,
            diffs: vec![Diff {
                page: PageId(2),
                entries: vec![(0, 5), (10, 6)],
            }],
        });
        roundtrip(Msg::BarrierArrive {
            from: ProcId(2),
            vc: VClock::from(vec![1, 2, 3]),
            records: vec![Arc::new(iv.clone())],
        });
        roundtrip(Msg::BitmapReq {
            items: vec![(iv.id(), PageId(1))],
        });
        roundtrip(Msg::BitmapReply {
            items: vec![(iv.id(), (PageId(1), PageBitmaps::new(64)))],
        });
        roundtrip(Msg::BarrierRelease {
            vc: VClock::from(vec![5, 5]),
            records: vec![Arc::new(iv.clone())],
            races: Arc::new(vec![]),
            epoch: 9,
            term: 3,
        });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::CkptAck {
            from: ProcId(2),
            epoch: 41,
        });
        roundtrip(Msg::CkptGo {
            epoch: 41,
            races: vec![],
            term: 0,
        });
        roundtrip(Msg::CkptGo {
            epoch: 42,
            races: vec![cvm_race::RaceReport {
                addr: cvm_page::GAddr(64),
                kind: cvm_race::RaceKind::WriteWrite,
                a: iv.id(),
                b: iv.id(),
                epoch: 42,
            }],
            term: 2,
        });
        roundtrip(Msg::MasterHandoff {
            master: ProcId(1),
            epoch: 7,
            term: 1,
        });
        roundtrip(Msg::MasterHandoffAck {
            from: ProcId(2),
            epoch: 7,
        });
    }

    /// The fixed-size fast path and the generic decoder agree on every
    /// eligible variant, and malformed lengths report the same errors.
    #[test]
    fn borrowed_fast_path_matches_generic_decode() {
        let fixed = [
            Msg::PageReadReq {
                page: PageId(7),
                requester: ProcId(1),
            },
            Msg::PageReadFwd {
                page: PageId(0xdead),
                requester: ProcId(3),
            },
            Msg::PageOwnReq {
                page: PageId(0),
                requester: ProcId(0),
            },
            Msg::PageOwnFwd {
                page: PageId(u32::MAX),
                requester: ProcId(u16::MAX),
            },
            Msg::CkptAck {
                from: ProcId(2),
                epoch: u64::MAX - 1,
            },
            Msg::Shutdown,
        ];
        for msg in &fixed {
            let bytes = msg.to_bytes();
            let mut r = Reader::new(&bytes);
            let generic = Msg::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(&Msg::from_bytes_borrowed(&bytes).unwrap(), msg);
            assert_eq!(generic, *msg);
            // Truncation and trailing garbage must fail identically to the
            // generic path (the fast path falls back on length mismatch).
            let mut long = bytes.clone();
            long.push(0);
            let generic_err = |b: &[u8]| {
                let mut r = Reader::new(b);
                Msg::decode(&mut r).and_then(|_| r.finish())
            };
            assert_eq!(
                Msg::from_bytes_borrowed(&long).unwrap_err(),
                generic_err(&long).unwrap_err(),
                "{msg:?}"
            );
            if bytes.len() > 1 {
                let short = &bytes[..bytes.len() - 1];
                assert_eq!(
                    Msg::from_bytes_borrowed(short).unwrap_err(),
                    generic_err(short).unwrap_err(),
                    "{msg:?}"
                );
            }
        }
    }

    /// The specialized bitmap-reply decoder is byte-equivalent to the
    /// generic one, including on truncated and hostile-length input.
    #[test]
    fn bitmap_reply_fast_path_matches_generic_decode() {
        let iv = make_interval(1, 3, vec![2, 3], &[1, 2], &[7]);
        let mut odd = PageBitmaps::new(65);
        odd.read.set(64);
        odd.write.set(3);
        let msg = Msg::BitmapReply {
            items: vec![
                (iv.id(), (PageId(1), PageBitmaps::new(64))),
                (iv.id(), (PageId(2), odd)),
            ],
        };
        let bytes = msg.to_bytes();
        assert_eq!(Msg::from_bytes_borrowed(&bytes).unwrap(), msg);
        for cut in 1..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let generic = Msg::decode(&mut r).and_then(|_| r.finish());
            assert_eq!(
                Msg::from_bytes_borrowed(&bytes[..cut]),
                generic.map(|()| unreachable!("truncated decode succeeded")),
                "cut at {cut}"
            );
        }
        // A count prefix claiming more items than the body can hold is
        // rejected before any allocation.
        let mut hostile = vec![TAG_BITMAP_REPLY];
        u32::MAX.encode(&mut hostile);
        assert_eq!(
            Msg::from_bytes_borrowed(&hostile).unwrap_err(),
            WireError::BadLength(u64::from(u32::MAX)),
        );
    }

    /// The arithmetic `wire_size` must match the encoder byte-for-byte on
    /// the hot variants with non-trivial payloads (empty collections,
    /// absent options, bitmaps whose bit count is not a word multiple).
    #[test]
    fn wire_size_matches_encoding_on_hot_variants() {
        use cvm_page::Bitmap;
        let iv0 = make_interval(0, 1, vec![1, 0, 0], &[], &[]);
        let iv1 = make_interval(2, 5, vec![1, 0, 5], &[0, 1, 2, 3], &[9; 40]);
        let iv0 = Arc::new(iv0);
        let iv1 = Arc::new(iv1);
        roundtrip(Msg::LockGrant {
            lock: 1,
            records: vec![],
            vc: VClock::from(vec![0, 0, 0]),
            trace_from: None,
        });
        roundtrip(Msg::LockGrant {
            lock: 1,
            records: vec![Arc::clone(&iv0), Arc::clone(&iv1)],
            vc: VClock::from(vec![3, 1, 5]),
            trace_from: None,
        });
        roundtrip(Msg::BarrierArrive {
            from: ProcId(2),
            vc: VClock::from(vec![1, 2, 3]),
            records: vec![Arc::clone(&iv0), Arc::clone(&iv1), Arc::clone(&iv0)],
        });
        roundtrip(Msg::PageReadReply {
            page: PageId(3),
            data: vec![],
        });
        roundtrip(Msg::PageFetchReq {
            page: PageId(1),
            requester: ProcId(1),
            needed: vec![(ProcId(0), 4), (ProcId(2), 1), (ProcId(3), 9)],
        });
        roundtrip(Msg::DiffFlush {
            writer: ProcId(0),
            interval: 2,
            diffs: vec![
                Diff {
                    page: PageId(0),
                    entries: vec![],
                },
                Diff {
                    page: PageId(7),
                    entries: vec![(1, 2), (3, 4), (5, 6)],
                },
            ],
        });
        roundtrip(Msg::BitmapReq { items: vec![] });
        let mut odd = PageBitmaps::new(65);
        odd.read.set(64);
        odd.write.set(0);
        roundtrip(Msg::BitmapReply {
            items: vec![
                (iv0.id(), (PageId(1), PageBitmaps::new(64))),
                (iv1.id(), (PageId(2), odd)),
                (
                    iv1.id(),
                    (
                        PageId(3),
                        PageBitmaps {
                            read: Bitmap::new(1),
                            write: Bitmap::new(1),
                        },
                    ),
                ),
            ],
        });
        roundtrip(Msg::BarrierRelease {
            vc: VClock::from(vec![5, 5, 5]),
            records: vec![iv1],
            races: Arc::new(vec![
                cvm_race::RaceReport {
                    addr: cvm_page::GAddr(64),
                    kind: cvm_race::RaceKind::WriteWrite,
                    a: iv0.id(),
                    b: iv0.id(),
                    epoch: 3,
                },
                cvm_race::RaceReport {
                    addr: cvm_page::GAddr(128),
                    kind: cvm_race::RaceKind::ReadWrite,
                    a: iv0.id(),
                    b: iv0.id(),
                    epoch: 3,
                },
            ]),
            epoch: 3,
            term: 1,
        });
    }

    #[test]
    fn grant_breakdown_separates_read_notices() {
        let iv = make_interval(0, 1, vec![1, 0], &[1], &[2, 3, 4, 5, 6]);
        let rn = iv.read_notice_bytes();
        let msg = Msg::LockGrant {
            lock: 0,
            records: vec![Arc::new(iv)],
            vc: VClock::from(vec![1, 0]),
            trace_from: None,
        };
        let b = msg.breakdown();
        assert_eq!(b.get(TrafficClass::ReadNotice), rn);
        assert_eq!(b.total(), msg.wire_size());
        assert!(b.get(TrafficClass::Sync) > 0);
    }

    #[test]
    fn page_reply_breakdown_is_mostly_data() {
        let msg = Msg::PageReadReply {
            page: PageId(0),
            data: vec![0; 512],
        };
        let b = msg.breakdown();
        assert_eq!(b.get(TrafficClass::Data), 4096);
        assert!(b.get(TrafficClass::Control) < 16);
    }

    #[test]
    fn garbage_decoding_fails_cleanly() {
        assert!(Msg::from_bytes(&[99]).is_err());
        assert!(Msg::from_bytes(&[]).is_err());
        assert!(Msg::from_bytes(&[TAG_LOCK_GRANT, 1]).is_err());
    }

    #[test]
    fn validate_accepts_well_formed_messages() {
        let iv = make_interval(1, 3, vec![2, 3], &[1, 2], &[7, 8, 9]);
        let msgs = [
            Msg::LockReq {
                lock: 5,
                requester: ProcId(1),
                vc: VClock::from(vec![1, 2]),
            },
            Msg::BarrierArrive {
                from: ProcId(0),
                vc: VClock::from(vec![1, 2]),
                records: vec![Arc::new(iv.clone())],
            },
            Msg::Shutdown,
            Msg::CkptAck {
                from: ProcId(1),
                epoch: 1,
            },
            Msg::MasterHandoff {
                master: ProcId(1),
                epoch: 3,
                term: 2,
            },
            Msg::MasterHandoffAck {
                from: ProcId(0),
                epoch: 3,
            },
        ];
        for m in &msgs {
            assert_eq!(m.validate(2), Ok(()), "{m:?}");
        }
    }

    #[test]
    fn validate_rejects_out_of_range_and_misshapen() {
        // Requester outside the cluster.
        let m = Msg::PageReadReq {
            page: PageId(0),
            requester: ProcId(4),
        };
        assert!(m.validate(4).is_err());
        assert!(m.validate(5).is_ok());
        // Clock narrower than the cluster.
        let m = Msg::LockReq {
            lock: 0,
            requester: ProcId(0),
            vc: VClock::from(vec![1, 2]),
        };
        assert!(m.validate(3).is_err());
        // Record created by a process the cluster does not have.
        let iv = make_interval(2, 1, vec![0, 0, 1], &[], &[]);
        let m = Msg::BarrierArrive {
            from: ProcId(0),
            vc: VClock::from(vec![0, 0]),
            records: vec![Arc::new(iv)],
        };
        assert!(m.validate(2).is_err());
        // A needed-diff entry naming an out-of-range writer.
        let m = Msg::PageFetchReq {
            page: PageId(0),
            requester: ProcId(0),
            needed: vec![(ProcId(9), 1)],
        };
        assert!(m.validate(2).is_err());
        // A handoff claiming a master seat outside the cluster.
        let m = Msg::MasterHandoff {
            master: ProcId(3),
            epoch: 0,
            term: 1,
        };
        assert!(m.validate(2).is_err());
    }
}
