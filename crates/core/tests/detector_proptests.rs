//! Property-based tests for the comparison algorithm.
//!
//! The detector must agree with a brute-force oracle that compares every
//! access of every interval pair directly, on randomly generated epochs.

use std::collections::{BTreeSet, HashMap};

use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_race::{BitmapStore, EpochDetector, Interval, OverlapStrategy, RaceKind};
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};
use proptest::prelude::*;

const NPROCS: usize = 3;
const NPAGES: u32 = 4;
const PAGE_WORDS: usize = 16;

/// A randomly generated interval: per-proc index plus raw word accesses.
#[derive(Debug, Clone)]
struct RawInterval {
    proc: usize,
    /// Entries of the vector clock for other processes (own entry is the
    /// interval index, assigned during normalization).
    knowledge: Vec<u32>,
    /// `(page, word, is_write)` accesses.
    accesses: Vec<(u32, usize, bool)>,
}

fn arb_raw(proc: usize) -> impl Strategy<Value = RawInterval> {
    (
        proptest::collection::vec(0u32..3, NPROCS),
        proptest::collection::vec((0..NPAGES, 0..PAGE_WORDS, any::<bool>()), 0..12),
    )
        .prop_map(move |(knowledge, accesses)| RawInterval {
            proc,
            knowledge,
            accesses,
        })
}

/// One epoch: two intervals per process with monotone clocks.
fn arb_epoch() -> impl Strategy<Value = Vec<RawInterval>> {
    let per_proc: Vec<_> = (0..NPROCS)
        .map(|p| proptest::collection::vec(arb_raw(p), 2))
        .collect();
    per_proc.prop_map(|v| v.into_iter().flatten().collect())
}

/// Normalizes raw intervals into well-formed `Interval`s + bitmaps.
///
/// Clocks are made self-consistent: per process, interval k gets index k+1
/// and its knowledge entries are clamped to be monotone in program order
/// and capped by how many intervals the source process has (so that stamps
/// describe a *possible* execution; exactness does not matter for the
/// oracle equivalence, which uses the same stamps).
fn normalize(raw: &[RawInterval]) -> (Vec<Interval>, BitmapStore) {
    let mut per_index: Vec<u32> = vec![0; NPROCS];
    let mut prev_knowledge: Vec<Vec<u32>> = vec![vec![0; NPROCS]; NPROCS];
    let mut intervals = Vec::new();
    let mut store = BitmapStore::new();
    for r in raw {
        let idx = per_index[r.proc] + 1;
        per_index[r.proc] = idx;
        let mut vc = vec![0u32; NPROCS];
        for q in 0..NPROCS {
            if q == r.proc {
                vc[q] = idx;
            } else {
                // Monotone in program order, and can't know an interval the
                // peer hasn't closed; a closed interval of q exists only up
                // to per_index[q] (conservative but consistent).
                let capped = r.knowledge[q].min(per_index[q]);
                vc[q] = capped.max(prev_knowledge[r.proc][q]);
            }
        }
        prev_knowledge[r.proc] = vc.clone();
        let id = IntervalId::new(ProcId::from_index(r.proc), idx);
        let stamp = IntervalStamp::new(id, VClock::from(vc));
        let mut writes = Vec::new();
        let mut reads = Vec::new();
        let mut maps: HashMap<u32, PageBitmaps> = HashMap::new();
        for &(page, word, is_write) in &r.accesses {
            let bm = maps
                .entry(page)
                .or_insert_with(|| PageBitmaps::new(PAGE_WORDS));
            if is_write {
                bm.write.set(word);
                writes.push(PageId(page));
            } else {
                bm.read.set(word);
                reads.push(PageId(page));
            }
        }
        for (page, bm) in maps {
            store.insert(id, PageId(page), bm);
        }
        intervals.push(Interval::new(stamp, writes, reads));
    }
    (intervals, store)
}

/// Brute-force oracle: every pair of accesses, compared directly.
fn oracle_races(raw: &[RawInterval], intervals: &[Interval]) -> BTreeSet<(u32, usize)> {
    let by_id: HashMap<IntervalId, &Interval> = intervals.iter().map(|iv| (iv.id(), iv)).collect();
    let mut racy = BTreeSet::new();
    let idx_of = |r: &RawInterval, seen: &mut Vec<u32>| -> IntervalId {
        let idx = seen[r.proc] + 1;
        seen[r.proc] = idx;
        IntervalId::new(ProcId::from_index(r.proc), idx)
    };
    let mut seen = vec![0u32; NPROCS];
    let ids: Vec<IntervalId> = raw.iter().map(|r| idx_of(r, &mut seen)).collect();
    for (i, a) in raw.iter().enumerate() {
        for (j, b) in raw.iter().enumerate().skip(i + 1) {
            if a.proc == b.proc {
                continue;
            }
            let sa = &by_id[&ids[i]].stamp;
            let sb = &by_id[&ids[j]].stamp;
            if !sa.concurrent_with(sb) {
                continue;
            }
            for &(pa, wa, wra) in &a.accesses {
                for &(pb, wb, wrb) in &b.accesses {
                    if pa == pb && wa == wb && (wra || wrb) {
                        racy.insert((pa, wa));
                    }
                }
            }
        }
    }
    racy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The detector finds exactly the racy words the oracle finds.
    #[test]
    fn detector_matches_bruteforce_oracle(raw in arb_epoch()) {
        let (intervals, store) = normalize(&raw);
        let expected = oracle_races(&raw, &intervals);
        let g = Geometry { page_words: PAGE_WORDS };
        let d = EpochDetector::new();
        let mut plan = d.plan(&intervals);
        let reports = d.compare(&mut plan, &store, g, 0).expect("bitmaps present");
        let got: BTreeSet<(u32, usize)> = reports
            .iter()
            .map(|r| {
                let (page, word) = g.locate(r.addr);
                (page.0, word)
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// All four overlap strategies produce identical check lists.
    #[test]
    fn overlap_strategies_agree(raw in arb_epoch()) {
        let (intervals, _) = normalize(&raw);
        let reference = EpochDetector { overlap: OverlapStrategy::Quadratic, ..Default::default() };
        for s in [
            OverlapStrategy::Auto,
            OverlapStrategy::SortedMerge,
            OverlapStrategy::PageBitmap,
        ] {
            let d = EpochDetector { overlap: s, ..Default::default() };
            for a in &intervals {
                for b in &intervals {
                    if a.proc() == b.proc() {
                        continue;
                    }
                    prop_assert_eq!(
                        d.overlap_pages(a, b),
                        reference.overlap_pages(a, b),
                        "strategy {:?} disagrees on {:?} vs {:?}",
                        s, a.id(), b.id()
                    );
                }
            }
        }
    }

    /// Two random epochs pushed through one reused [`EpochArena`] produce
    /// exactly the plans and reports of two fresh arenas: scratch left
    /// behind by the first epoch never bleeds into the second.
    #[test]
    fn arena_reuse_is_invisible(raw1 in arb_epoch(), raw2 in arb_epoch()) {
        use cvm_race::EpochArena;
        let g = Geometry { page_words: PAGE_WORDS };
        let d = EpochDetector { workers: 2, ..EpochDetector::new() };
        let mut arena = EpochArena::new();
        for (epoch, raw) in [(0u64, &raw1), (1, &raw2)] {
            let (intervals, store) = normalize(raw);
            let mut fresh_plan = d.plan_with(&intervals, &mut EpochArena::new());
            let fresh = d
                .compare_with(&mut fresh_plan, &store, g, epoch, &mut EpochArena::new())
                .unwrap();
            let mut plan = d.plan_with(&intervals, &mut arena);
            prop_assert_eq!(&plan.check.entries, &fresh_plan.check.entries);
            let reports = d.compare_with(&mut plan, &store, g, epoch, &mut arena).unwrap();
            prop_assert_eq!(reports, fresh);
            prop_assert_eq!(plan.stats, fresh_plan.stats);
        }
    }

    /// Write-write reports always name a word both intervals wrote;
    /// read-write reports name a word with at least one write.
    #[test]
    fn report_kinds_are_consistent_with_bitmaps(raw in arb_epoch()) {
        let (intervals, store) = normalize(&raw);
        let g = Geometry { page_words: PAGE_WORDS };
        let d = EpochDetector::new();
        let mut plan = d.plan(&intervals);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        for r in &reports {
            let (page, word) = g.locate(r.addr);
            let ba = store.get(r.a, page).unwrap();
            let bb = store.get(r.b, page).unwrap();
            match r.kind {
                RaceKind::WriteWrite => {
                    prop_assert!(ba.write.get(word) && bb.write.get(word));
                }
                RaceKind::ReadWrite => {
                    prop_assert!(
                        (ba.read.get(word) && bb.write.get(word))
                            || (ba.write.get(word) && bb.read.get(word))
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pruned enumeration finds exactly the same concurrent pairs and
    /// check entries as the paper's all-pairs scan, with (at most) as many
    /// version-vector comparisons.
    #[test]
    fn pruned_enumeration_matches_naive(raw in arb_epoch()) {
        use cvm_race::PairEnumeration;
        let (intervals, _) = normalize(&raw);
        let naive = EpochDetector {
            enumeration: PairEnumeration::Naive,
            ..EpochDetector::new()
        }
        .plan(&intervals);
        let pruned = EpochDetector {
            enumeration: PairEnumeration::Pruned,
            ..EpochDetector::new()
        }
        .plan(&intervals);
        // Same pairs and requests (order may differ: compare as sets).
        let key = |e: &cvm_race::CheckEntry| {
            let (lo, hi) = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
            (lo, hi, e.pages.clone())
        };
        let mut naive_entries: Vec<_> = naive.check.entries.iter().map(key).collect();
        let mut pruned_entries: Vec<_> = pruned.check.entries.iter().map(key).collect();
        naive_entries.sort();
        pruned_entries.sort();
        prop_assert_eq!(naive_entries, pruned_entries);
        prop_assert_eq!(
            naive.bitmap_requests().collect::<Vec<_>>(),
            pruned.bitmap_requests().collect::<Vec<_>>()
        );
        prop_assert_eq!(naive.stats.pairs_concurrent, pruned.stats.pairs_concurrent);
        prop_assert_eq!(naive.stats.pairs_overlapping, pruned.stats.pairs_overlapping);
        prop_assert_eq!(naive.stats.intervals_used, pruned.stats.intervals_used);
    }
}

/// On a barrier-heavy epoch (mostly ordered intervals), pruning does far
/// fewer version-vector comparisons than the quadratic scan.
#[test]
fn pruned_enumeration_reduces_comparisons_on_ordered_epochs() {
    use cvm_race::{make_interval, PairEnumeration};
    // A lock-chain epoch: every interval of P1 is ordered after all of
    // P0's (P1 kept acquiring from P0), so no pair is concurrent.
    let mut intervals = Vec::new();
    let n = 64u32;
    for i in 1..=n {
        intervals.push(make_interval(0, i, vec![i, 0], &[i], &[]));
    }
    for j in 1..=n {
        // P1's interval j has seen all of P0.
        intervals.push(make_interval(1, j, vec![n, j], &[j + 1000], &[]));
    }
    let naive = EpochDetector {
        enumeration: PairEnumeration::Naive,
        ..EpochDetector::new()
    }
    .plan(&intervals);
    let pruned = EpochDetector {
        enumeration: PairEnumeration::Pruned,
        ..EpochDetector::new()
    }
    .plan(&intervals);
    assert_eq!(naive.stats.pairs_concurrent, 0);
    assert_eq!(pruned.stats.pairs_concurrent, 0);
    assert_eq!(naive.stats.pair_comparisons, u64::from(n) * u64::from(n));
    assert!(
        pruned.stats.pair_comparisons < u64::from(n) * 16,
        "pruned did {} comparisons",
        pruned.stats.pair_comparisons
    );
}
