//! The barrier-master comparison algorithm (paper §4, steps 2–5).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Range;

use cvm_page::{Bitmap, Geometry, PageBitmaps, PageId};
use cvm_vclock::{IntervalId, ProcId};

use crate::{DetectorStats, Interval, RaceKind, RaceReport};

/// Notice-list length at or below which [`OverlapStrategy::Auto`] uses
/// the paper's quadratic scan instead of the sorted merge.
///
/// Calibrated from the `overlap_cutover` Criterion sweep
/// (`crates/bench/benches/detector.rs`, harvested into
/// `bench_results/overlap_cutover.csv`): on half-overlapping lists the
/// merge is at parity with the scan for single-entry lists (75 ns vs
/// 76 ns) and strictly faster at every longer length (2 entries: 76 ns
/// vs 91 ns; 8: 201 ns vs 317 ns; 16: 379 ns vs 836 ns; 32: 659 ns vs
/// 2179 ns), so the scan is only kept for the degenerate one-page lists
/// where it skips the merge's cursor bookkeeping.  Earlier revisions
/// guessed 16; the sweep shows the scan's constant-factor edge never
/// materialises because both paths allocate the same output vector.
pub const AUTO_OVERLAP_CUTOVER: usize = 1;

/// Strategy for intersecting two intervals' page notice lists.
///
/// The paper uses a naive `O(n^2)` scan because lists are "usually very
/// small (i.e. less than ten)" and notes (§6.2) that bitmap-backed page
/// lists would make the comparison linear in the number of pages; all three
/// are implemented (and benchmarked against each other) here.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapStrategy {
    /// Naive scan for short lists, merge for long ones.
    #[default]
    Auto,
    /// The paper's naive `O(n*m)` nested scan.
    Quadratic,
    /// Linear merge of the (sorted) notice lists.
    SortedMerge,
    /// Bitmap over the page id space (§6.2's suggested improvement).
    PageBitmap,
}

/// How concurrent interval pairs are enumerated during planning.
///
/// The paper uses "a very simple interval comparison algorithm ...
/// primarily because the major system overhead is elsewhere", noting that
/// "synchronization and program order allow many of the comparisons to be
/// bypassed".  [`PairEnumeration::Pruned`] implements that bypass: within
/// one process, interval indices are totally ordered and knowledge only
/// grows, so for a fixed interval `a` of process `p`, the intervals of
/// process `q` ordered *before* `a` form a prefix (indices `<=
/// a.vc[q]`) and those ordered *after* form a suffix (the first whose
/// clock has seen `a`); the concurrent ones are the contiguous middle,
/// found by two binary searches instead of a full scan.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PairEnumeration {
    /// The paper's all-pairs scan.
    Naive,
    /// Binary-search pruning over per-process sorted interval lists.
    ///
    /// Requires stamps from a real execution: a process's knowledge of any
    /// peer must be non-decreasing in program order (always true of
    /// clocks produced by the protocol).  The default: it produces the
    /// same check list as [`PairEnumeration::Naive`] (property-tested)
    /// with far fewer version-vector comparisons on ordered epochs.
    #[default]
    Pruned,
}

/// Classification of one interval pair during planning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairClass {
    /// Ordered by happens-before-1; cannot race.
    Ordered,
    /// Concurrent, but their page access lists are disjoint.
    ConcurrentNoOverlap,
    /// Concurrent with overlapping pages: unsynchronized sharing (true or
    /// false) — goes on the check list.
    ConcurrentOverlap,
}

/// One check-list entry: a concurrent interval pair and the pages both
/// touched in a conflicting way.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckEntry {
    /// First interval (belonging to the lower-numbered process).
    pub a: IntervalId,
    /// Second interval.
    pub b: IntervalId,
    /// Overlapping pages, sorted.
    pub pages: Vec<PageId>,
}

/// The check list (paper §4, step 3): every concurrent interval pair with
/// page overlap, to be resolved at word granularity with bitmaps.
#[derive(Clone, Default, Debug)]
pub struct CheckList {
    /// Entries in discovery order.
    pub entries: Vec<CheckEntry>,
}

impl CheckList {
    /// Returns `true` if nothing needs word-level comparison.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Output of the planning phase (steps 2–3): the check list, the bitmaps to
/// fetch, and the counters accumulated so far.
#[derive(Clone, Debug)]
pub struct DetectionPlan {
    /// Pairs needing bitmap comparison.
    pub check: CheckList,
    /// Statistics for this epoch (bitmap counters filled in during
    /// [`EpochDetector::compare`]).
    pub stats: DetectorStats,
    requests: BTreeSet<(IntervalId, PageId)>,
}

impl DetectionPlan {
    /// Distinct `(interval, page)` bitmaps the master must retrieve in the
    /// extra barrier round (step 4), sorted.
    pub fn bitmap_requests(&self) -> impl Iterator<Item = (IntervalId, PageId)> + '_ {
        self.requests.iter().copied()
    }

    /// Number of distinct bitmaps to retrieve.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }
}

/// Storage for access bitmaps keyed by `(interval, page)`.
///
/// Each node keeps bitmaps for the intervals it created until they have
/// been checked at a barrier; the master assembles the subset named by the
/// check list into one of these before comparing.
#[derive(Clone, Default, Debug)]
pub struct BitmapStore {
    map: HashMap<(IntervalId, PageId), PageBitmaps>,
}

impl BitmapStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BitmapStore::default()
    }

    /// Inserts (or replaces) the bitmaps for `(interval, page)`.
    pub fn insert(&mut self, interval: IntervalId, page: PageId, bitmaps: PageBitmaps) {
        self.map.insert((interval, page), bitmaps);
    }

    /// Looks up the bitmaps for `(interval, page)`.
    pub fn get(&self, interval: IntervalId, page: PageId) -> Option<&PageBitmaps> {
        self.map.get(&(interval, page))
    }

    /// Number of stored bitmap pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every bitmap belonging to `interval`.
    pub fn evict_interval(&mut self, interval: IntervalId) {
        self.map.retain(|(id, _), _| *id != interval);
    }

    /// Retains only the bitmaps whose key satisfies `keep` (used for
    /// epoch-boundary garbage collection).
    pub fn retain(&mut self, mut keep: impl FnMut(&(IntervalId, PageId)) -> bool) {
        self.map.retain(|k, _| keep(k));
    }

    /// Iterates over every stored `((interval, page), bitmaps)` entry in
    /// unspecified order (checkpoint serialization sorts the keys itself).
    pub fn iter(&self) -> impl Iterator<Item = (&(IntervalId, PageId), &PageBitmaps)> {
        self.map.iter()
    }
}

/// Reusable per-epoch scratch buffers for the detector's planning and
/// word-level comparison phases.
///
/// Both phases used to allocate inside their hot loops: planning built a
/// fresh page-overlap vector per concurrent pair (three intermediate
/// vectors per pair under the list strategies), and the comparison built a
/// fresh write-write chunk vector per `(entry, page)`.  An arena owns one
/// scratch set per worker shard and hands it back cleared, so a master
/// that keeps its arena across barrier epochs does **zero mid-epoch heap
/// allocation** in the comparison (outputs — check entries and race
/// reports — still allocate, exactly as before).
///
/// Reuse never changes results: every buffer is cleared before use, and
/// running two epochs through one arena is property-tested identical to
/// running them through two fresh arenas.
#[derive(Default, Debug)]
pub struct EpochArena {
    workers: Vec<WorkerScratch>,
}

impl EpochArena {
    /// Creates an empty arena (buffers grow on first use).
    pub fn new() -> Self {
        EpochArena::default()
    }

    /// Hands out one scratch set per shard, growing the pool as needed.
    fn scratches(&mut self, n: usize) -> &mut [WorkerScratch] {
        if self.workers.len() < n {
            self.workers.resize_with(n, WorkerScratch::default);
        }
        &mut self.workers[..n]
    }
}

/// One worker shard's scratch buffers (cleared before each use).
#[derive(Default, Debug)]
struct WorkerScratch {
    /// Page-overlap output for the pair currently being planned.
    pages: Vec<PageId>,
    /// Write-write chunk masks for the page currently being compared.
    ww: Vec<(usize, u64)>,
}

/// Error from the word-level comparison phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectError {
    /// A bitmap named by the check list was not supplied.
    MissingBitmap {
        /// Interval whose bitmap is missing.
        interval: IntervalId,
        /// Page whose bitmap is missing.
        page: PageId,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::MissingBitmap { interval, page } => {
                write!(f, "missing access bitmap for {interval:?} on {page:?}")
            }
        }
    }
}

impl std::error::Error for DetectError {}

/// The epoch-level race detector run by the barrier master.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochDetector {
    /// Page-list intersection strategy.
    pub overlap: OverlapStrategy,
    /// Concurrent-pair enumeration strategy.
    pub enumeration: PairEnumeration,
    /// Worker threads for planning and word-level comparison: `0` resolves
    /// to the host's available parallelism, `1` is the paper's serial
    /// master.
    ///
    /// Every worker count produces **bit-identical** plans, reports, and
    /// statistics: work is split into contiguous shards of the serial
    /// iteration order and shard outputs are merged back in shard order,
    /// so parallelism changes wall-clock time only — never what the
    /// detector reports or what the simulated cost model charges.
    pub workers: usize,
}

impl EpochDetector {
    /// Creates a detector with the default (auto) overlap strategy.
    pub fn new() -> Self {
        EpochDetector::default()
    }

    /// Resolves the configured worker count against the number of work
    /// items (shards are never smaller than one item).
    fn effective_workers(&self, items: usize) -> usize {
        if items == 0 {
            return 1;
        }
        let cap = match self.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        cap.clamp(1, items)
    }

    /// Steps 2–3: enumerate concurrent interval pairs among `intervals`
    /// (one barrier epoch) and build the check list.
    ///
    /// Intervals of the same process are never compared — program order
    /// already orders them — so the version-vector comparison count is
    /// bounded by `O(i^2 p^2)` exactly as in the paper.
    ///
    /// With [`EpochDetector::workers`] above one, pair enumeration is
    /// sharded across threads by contiguous ranges of the serial iteration
    /// order (outer interval index for [`PairEnumeration::Naive`], process
    /// pairs for [`PairEnumeration::Pruned`]); the merged check list,
    /// request set, and statistics are identical to the serial ones.
    pub fn plan<I: std::borrow::Borrow<Interval>>(&self, intervals: &[I]) -> DetectionPlan {
        self.plan_with(intervals, &mut EpochArena::new())
    }

    /// [`EpochDetector::plan`] with caller-owned scratch: a master that
    /// keeps one [`EpochArena`] across epochs plans without re-allocating
    /// its per-pair overlap buffers.  Results are identical to
    /// [`EpochDetector::plan`].
    pub fn plan_with<I: std::borrow::Borrow<Interval>>(
        &self,
        intervals: &[I],
        arena: &mut EpochArena,
    ) -> DetectionPlan {
        // Accepting any borrow of `Interval` lets the barrier master plan
        // directly over its `Arc`-shared records without copying them.
        let intervals: Vec<&Interval> = intervals.iter().map(std::borrow::Borrow::borrow).collect();
        let intervals = &intervals[..];
        let mut stats = DetectorStats {
            intervals_total: intervals.len() as u64,
            ..DetectorStats::default()
        };
        for iv in intervals {
            stats.bitmaps_total += (iv.write_notices.len() + iv.read_notices.len()) as u64;
        }

        let shards = match self.enumeration {
            PairEnumeration::Naive => {
                // Outer index i is compared against everything after it.
                let n = intervals.len();
                let weights: Vec<u64> = (0..n).map(|i| (n - 1 - i) as u64).collect();
                self.run_plan_shards(arena, &weights, |planner, scratch, range| {
                    planner.naive(scratch, intervals, range);
                })
            }
            PairEnumeration::Pruned => {
                let by_proc = group_by_proc(intervals);
                let procs: Vec<ProcId> = by_proc.keys().copied().collect();
                let mut pairs = Vec::new();
                for (x, &p) in procs.iter().enumerate() {
                    for &q in &procs[x + 1..] {
                        pairs.push((p, q));
                    }
                }
                let weights: Vec<u64> =
                    pairs.iter().map(|(p, _)| by_proc[p].len() as u64).collect();
                self.run_plan_shards(arena, &weights, |planner, scratch, range| {
                    planner.pruned(scratch, &by_proc, &pairs[range]);
                })
            }
        };

        let mut check = CheckList::default();
        let mut requests = BTreeSet::new();
        let mut used = BTreeSet::new();
        for shard in shards {
            stats.add(&shard.stats);
            check.entries.extend(shard.check.entries);
            requests.extend(shard.requests);
            used.extend(shard.used);
        }
        stats.intervals_used = used.len() as u64;
        stats.bitmaps_requested = requests.len() as u64;
        DetectionPlan {
            check,
            stats,
            requests,
        }
    }

    /// Runs `fill` over contiguous weight-balanced shards of the serial
    /// iteration order and returns the per-shard planners **in shard
    /// order**, so concatenating their outputs reproduces the serial
    /// result exactly.
    fn run_plan_shards<F>(
        &self,
        arena: &mut EpochArena,
        weights: &[u64],
        fill: F,
    ) -> Vec<Planner<'_>>
    where
        F: Fn(&mut Planner<'_>, &mut WorkerScratch, Range<usize>) + Sync,
    {
        let ranges = balanced_ranges(weights, self.effective_workers(weights.len()));
        let scratches = arena.scratches(ranges.len());
        if ranges.len() <= 1 {
            return ranges
                .into_iter()
                .zip(scratches)
                .map(|(r, scratch)| {
                    let mut p = Planner::new(self);
                    fill(&mut p, scratch, r);
                    p
                })
                .collect();
        }
        std::thread::scope(|s| {
            let fill = &fill;
            let handles: Vec<_> = ranges
                .into_iter()
                .zip(scratches.iter_mut())
                .map(|(r, scratch)| {
                    s.spawn(move || {
                        let mut p = Planner::new(self);
                        fill(&mut p, scratch, r);
                        p
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("plan shard panicked"))
                .collect()
        })
    }

    /// Classifies a single interval pair (exposed for the figure-level unit
    /// tests and the ablation benches).
    pub fn classify_pair(&self, a: &Interval, b: &Interval) -> PairClass {
        if !a.stamp.concurrent_with(&b.stamp) {
            return PairClass::Ordered;
        }
        if self.overlap_pages(a, b).is_empty() {
            PairClass::ConcurrentNoOverlap
        } else {
            PairClass::ConcurrentOverlap
        }
    }

    /// Pages on which `a` and `b` conflict: written by one and read *or*
    /// written by the other.
    pub fn overlap_pages(&self, a: &Interval, b: &Interval) -> Vec<PageId> {
        let mut pages = Vec::new();
        self.overlap_pages_into(a, b, &mut pages);
        pages
    }

    /// [`EpochDetector::overlap_pages`] into a caller-owned buffer (cleared
    /// first): the planner's per-pair hot path, which allocates nothing
    /// when the buffer is reused across pairs.
    pub fn overlap_pages_into(&self, a: &Interval, b: &Interval, out: &mut Vec<PageId>) {
        out.clear();
        match self.overlap {
            OverlapStrategy::Quadratic => {
                quadratic_intersect(&a.write_notices, &b.write_notices, out);
                quadratic_intersect(&a.write_notices, &b.read_notices, out);
                quadratic_intersect(&a.read_notices, &b.write_notices, out);
            }
            OverlapStrategy::SortedMerge => {
                merge_intersect(&a.write_notices, &b.write_notices, out);
                merge_intersect(&a.write_notices, &b.read_notices, out);
                merge_intersect(&a.read_notices, &b.write_notices, out);
            }
            OverlapStrategy::PageBitmap => bitmap_conflict(a, b, out),
            OverlapStrategy::Auto => {
                let longest = a
                    .write_notices
                    .len()
                    .max(a.read_notices.len())
                    .max(b.write_notices.len())
                    .max(b.read_notices.len());
                let strategy = if longest <= AUTO_OVERLAP_CUTOVER {
                    OverlapStrategy::Quadratic
                } else {
                    OverlapStrategy::SortedMerge
                };
                EpochDetector {
                    overlap: strategy,
                    ..*self
                }
                .overlap_pages_into(a, b, out);
                return;
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Step 5: word-level bitmap comparison for every check-list entry.
    ///
    /// `epoch` tags the resulting reports.  Updates `plan.stats` with the
    /// comparison and race counters.
    ///
    /// With [`EpochDetector::workers`] above one, check entries are
    /// sharded across threads by contiguous ranges; merging shard outputs
    /// in shard order reproduces the serial report order, counters, and
    /// (on failure) the serial first error exactly.
    ///
    /// # Errors
    ///
    /// [`DetectError::MissingBitmap`] if `bitmaps` lacks an entry named by
    /// the check list.
    pub fn compare(
        &self,
        plan: &mut DetectionPlan,
        bitmaps: &BitmapStore,
        geometry: Geometry,
        epoch: u64,
    ) -> Result<Vec<RaceReport>, DetectError> {
        self.compare_with(plan, bitmaps, geometry, epoch, &mut EpochArena::new())
    }

    /// [`EpochDetector::compare`] with caller-owned scratch: with a reused
    /// [`EpochArena`] the word-level comparison performs zero mid-epoch
    /// heap allocation (reports excepted).  Results are identical to
    /// [`EpochDetector::compare`].
    ///
    /// # Errors
    ///
    /// [`DetectError::MissingBitmap`] if `bitmaps` lacks an entry named by
    /// the check list.
    pub fn compare_with(
        &self,
        plan: &mut DetectionPlan,
        bitmaps: &BitmapStore,
        geometry: Geometry,
        epoch: u64,
        arena: &mut EpochArena,
    ) -> Result<Vec<RaceReport>, DetectError> {
        let entries = &plan.check.entries;
        let weights: Vec<u64> = entries.iter().map(|e| e.pages.len() as u64).collect();
        let ranges = balanced_ranges(&weights, self.effective_workers(entries.len()));
        let scratches = arena.scratches(ranges.len());
        let shards: Vec<CompareShard> = if ranges.len() <= 1 {
            ranges
                .into_iter()
                .zip(scratches)
                .map(|(r, scratch)| compare_entries(&entries[r], bitmaps, geometry, epoch, scratch))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .zip(scratches.iter_mut())
                    .map(|(r, scratch)| {
                        s.spawn(move || {
                            compare_entries(&entries[r], bitmaps, geometry, epoch, scratch)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("compare shard panicked"))
                    .collect()
            })
        };
        let mut reports = Vec::new();
        for shard in shards {
            // Counters and reports of shards past a failing one are
            // discarded, matching where the serial scan would have stopped.
            plan.stats.bitmap_comparisons += shard.comparisons;
            reports.extend(shard.reports);
            if let Some(err) = shard.error {
                return Err(err);
            }
        }
        plan.stats.races_found += reports.len() as u64;
        Ok(reports)
    }
}

/// Splits `0..weights.len()` into at most `shards` contiguous, non-empty
/// ranges of roughly equal total weight.  Items are never reordered, so
/// shard outputs concatenate back into the serial order regardless of the
/// split.
fn balanced_ranges(weights: &[u64], shards: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, n);
    if shards == 1 {
        return std::iter::once(0..n).collect();
    }
    let total: u64 = weights.iter().sum::<u64>().max(1);
    let mut out: Vec<Range<usize>> = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        let filled = out.len() as u64 + 1;
        if filled < shards as u64 && acc * shards as u64 >= total * filled {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    out.push(start..n);
    out.retain(|r| !r.is_empty());
    out
}

/// Groups intervals by owning process, each list sorted by interval index
/// (the order [`Planner::pruned`]'s binary searches require).
fn group_by_proc<'a>(intervals: &[&'a Interval]) -> BTreeMap<ProcId, Vec<&'a Interval>> {
    let mut by_proc: BTreeMap<ProcId, Vec<&'a Interval>> = BTreeMap::new();
    for &iv in intervals {
        by_proc.entry(iv.proc()).or_default().push(iv);
    }
    for list in by_proc.values_mut() {
        list.sort_by_key(|iv| iv.id().index);
    }
    by_proc
}

/// One shard's output from the word-level comparison phase.
struct CompareShard {
    reports: Vec<RaceReport>,
    comparisons: u64,
    error: Option<DetectError>,
}

/// Compares one contiguous run of check entries, stopping at the first
/// missing bitmap exactly as the serial scan does.
fn compare_entries(
    entries: &[CheckEntry],
    bitmaps: &BitmapStore,
    geometry: Geometry,
    epoch: u64,
    scratch: &mut WorkerScratch,
) -> CompareShard {
    let mut shard = CompareShard {
        reports: Vec::new(),
        comparisons: 0,
        error: None,
    };
    'entries: for entry in entries {
        for &page in &entry.pages {
            let Some(ba) = bitmaps.get(entry.a, page) else {
                shard.error = Some(DetectError::MissingBitmap {
                    interval: entry.a,
                    page,
                });
                break 'entries;
            };
            let Some(bb) = bitmaps.get(entry.b, page) else {
                shard.error = Some(DetectError::MissingBitmap {
                    interval: entry.b,
                    page,
                });
                break 'entries;
            };
            shard.comparisons += 1;
            compare_page(
                entry,
                page,
                ba,
                bb,
                geometry,
                epoch,
                &mut scratch.ww,
                &mut shard.reports,
            );
        }
    }
    shard
}

/// Planning state for one shard (the serial path is the one-shard case).
///
/// Every field merges exactly: the stats are additive counters, the check
/// list concatenates in shard order, and the request/used sets union.
struct Planner<'d> {
    detector: &'d EpochDetector,
    stats: DetectorStats,
    check: CheckList,
    requests: BTreeSet<(IntervalId, PageId)>,
    used: BTreeSet<IntervalId>,
}

impl<'d> Planner<'d> {
    fn new(detector: &'d EpochDetector) -> Self {
        Planner {
            detector,
            stats: DetectorStats::default(),
            check: CheckList::default(),
            requests: BTreeSet::new(),
            used: BTreeSet::new(),
        }
    }

    /// Handles one *known-concurrent* pair: page overlap + check list.
    fn concurrent_pair(&mut self, scratch: &mut WorkerScratch, a: &Interval, b: &Interval) {
        self.stats.pairs_concurrent += 1;
        if a.is_quiet() && b.is_quiet() {
            return;
        }
        self.detector.overlap_pages_into(a, b, &mut scratch.pages);
        let pages = &scratch.pages;
        if pages.is_empty() {
            return;
        }
        self.stats.pairs_overlapping += 1;
        self.used.insert(a.id());
        self.used.insert(b.id());
        for &pg in pages {
            self.requests.insert((a.id(), pg));
            self.requests.insert((b.id(), pg));
        }
        self.check.entries.push(CheckEntry {
            a: a.id(),
            b: b.id(),
            pages: pages.clone(),
        });
    }

    /// The paper's all-pairs scan, over one range of outer indices.
    fn naive(&mut self, scratch: &mut WorkerScratch, intervals: &[&Interval], range: Range<usize>) {
        for i in range {
            let a = intervals[i];
            for &b in &intervals[i + 1..] {
                if a.proc() == b.proc() {
                    continue;
                }
                self.stats.pair_comparisons += 1;
                if a.stamp.concurrent_with(&b.stamp) {
                    self.concurrent_pair(scratch, a, b);
                }
            }
        }
    }

    /// Binary-search pruning over one run of process pairs: per pair, the
    /// intervals of `q` concurrent with a fixed interval of `p` form a
    /// contiguous run.
    fn pruned(
        &mut self,
        scratch: &mut WorkerScratch,
        by_proc: &BTreeMap<ProcId, Vec<&Interval>>,
        pairs: &[(ProcId, ProcId)],
    ) {
        for &(p, q) in pairs {
            let pa = &by_proc[&p];
            let qb = &by_proc[&q];
            for a in pa {
                // Prefix of q ordered before a: indices <= a.vc[q].
                let known = a.stamp.vc.get(q);
                let lo = partition_probe(qb, &mut self.stats, |b| b.id().index <= known);
                // Suffix of q ordered after a: the first whose clock
                // has seen a (knowledge is monotone in program order).
                let own = a.id().index;
                let hi =
                    partition_probe(&qb[lo..], &mut self.stats, |b| b.stamp.vc.get(p) < own) + lo;
                for b in &qb[lo..hi] {
                    debug_assert!(a.stamp.concurrent_with(&b.stamp));
                    self.concurrent_pair(scratch, a, b);
                }
            }
        }
    }
}

/// `partition_point` that counts each probe as one version-vector
/// comparison in the statistics.
fn partition_probe(
    list: &[&Interval],
    stats: &mut DetectorStats,
    mut pred: impl FnMut(&Interval) -> bool,
) -> usize {
    let mut lo = 0;
    let mut hi = list.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        stats.pair_comparisons += 1;
        if pred(list[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Iterates the bit indices of `mask`, offset for backing word `wi`.
fn mask_bits(wi: usize, mut mask: u64) -> impl Iterator<Item = usize> {
    core::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let tz = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(wi * 64 + tz)
        }
    })
}

/// Compares one page's bitmaps for one concurrent interval pair.
///
/// Works a 64-word chunk at a time via [`Bitmap::overlap_chunks`] (the
/// SWAR 4-lane AND-walk): the summary guard skips disjoint bitmap pairs
/// (the false-sharing common case) without scanning, and the mask
/// arithmetic below suppresses duplicate reports per chunk instead of per
/// bit.  `ww` is caller-owned scratch for the write-write chunk masks
/// (cleared here), so a reused arena makes this loop allocation-free.
#[allow(clippy::too_many_arguments)]
fn compare_page(
    entry: &CheckEntry,
    page: PageId,
    a: &PageBitmaps,
    b: &PageBitmaps,
    geometry: Geometry,
    epoch: u64,
    ww: &mut Vec<(usize, u64)>,
    out: &mut Vec<RaceReport>,
) {
    let report = |word: usize, kind: RaceKind| RaceReport {
        addr: geometry.addr_of(page, word),
        kind,
        a: entry.a,
        b: entry.b,
        epoch,
    };
    // Write-write conflicts take precedence; collect them first, keeping
    // the racy chunk masks to suppress duplicate read-write reports.
    ww.clear();
    for (wi, m) in a.write.overlap_chunks(&b.write) {
        for w in mask_bits(wi, m) {
            out.push(report(w, RaceKind::WriteWrite));
        }
        ww.push((wi, m));
    }
    let ww_mask = |wi: usize| -> u64 {
        ww.binary_search_by_key(&wi, |&(i, _)| i)
            .map_or(0, |k| ww[k].1)
    };
    for (wi, m) in a.write.overlap_chunks(&b.read) {
        for w in mask_bits(wi, m & !ww_mask(wi)) {
            out.push(report(w, RaceKind::ReadWrite));
        }
    }
    let a_write = a.write.raw();
    for (wi, m) in a.read.overlap_chunks(&b.write) {
        // A word already reported write-write or where `a` also wrote
        // (covered by the a.write∩b.write / a.write∩b.read passes) is not
        // reported again.
        for w in mask_bits(wi, m & !ww_mask(wi) & !a_write[wi]) {
            out.push(report(w, RaceKind::ReadWrite));
        }
    }
}

fn quadratic_intersect(a: &[PageId], b: &[PageId], out: &mut Vec<PageId>) {
    for &x in a {
        for &y in b {
            if x == y {
                out.push(x);
            }
        }
    }
}

fn merge_intersect(a: &[PageId], b: &[PageId], out: &mut Vec<PageId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn bitmap_conflict(a: &Interval, b: &Interval, out: &mut Vec<PageId>) {
    let max_page = a
        .pages_touched()
        .iter()
        .chain(b.pages_touched().iter())
        .map(|p| p.0)
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut wa = Bitmap::new(max_page);
    let mut ra = Bitmap::new(max_page);
    let mut wb = Bitmap::new(max_page);
    let mut rb = Bitmap::new(max_page);
    for p in &a.write_notices {
        wa.set(p.index());
    }
    for p in &a.read_notices {
        ra.set(p.index());
    }
    for p in &b.write_notices {
        wb.set(p.index());
    }
    for p in &b.read_notices {
        rb.set(p.index());
    }
    out.extend(
        wa.overlap_words(&wb)
            .chain(wa.overlap_words(&rb))
            .chain(ra.overlap_words(&wb))
            .map(|i| PageId(i as u32)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::make_interval;

    const STRATEGIES: [OverlapStrategy; 4] = [
        OverlapStrategy::Auto,
        OverlapStrategy::Quadratic,
        OverlapStrategy::SortedMerge,
        OverlapStrategy::PageBitmap,
    ];

    #[test]
    fn overlap_requires_a_writer() {
        // Read-read sharing on page 3 is not a conflict.
        let a = make_interval(0, 1, vec![1, 0], &[], &[3]);
        let b = make_interval(1, 1, vec![0, 1], &[], &[3]);
        for s in STRATEGIES {
            let d = EpochDetector {
                overlap: s,
                ..Default::default()
            };
            assert!(d.overlap_pages(&a, &b).is_empty(), "{s:?}");
            assert_eq!(d.classify_pair(&a, &b), PairClass::ConcurrentNoOverlap);
        }
    }

    #[test]
    fn overlap_detects_all_three_conflict_shapes() {
        // a writes 1, reads 2; b writes 2, reads 1; both write 5.
        let a = make_interval(0, 1, vec![1, 0], &[1, 5], &[2]);
        let b = make_interval(1, 1, vec![0, 1], &[2, 5], &[1]);
        for s in STRATEGIES {
            let d = EpochDetector {
                overlap: s,
                ..Default::default()
            };
            assert_eq!(
                d.overlap_pages(&a, &b),
                vec![PageId(1), PageId(2), PageId(5)],
                "{s:?}"
            );
        }
    }

    #[test]
    fn ordered_pairs_are_never_checked() {
        // b's clock has seen a's interval: ordered, even with page overlap.
        let a = make_interval(0, 1, vec![1, 0], &[7], &[]);
        let b = make_interval(1, 1, vec![1, 1], &[7], &[]);
        let d = EpochDetector {
            enumeration: PairEnumeration::Naive,
            ..Default::default()
        };
        assert_eq!(d.classify_pair(&a, &b), PairClass::Ordered);
        let plan = d.plan(&[a.clone(), b.clone()]);
        assert!(plan.check.is_empty());
        assert_eq!(plan.stats.pairs_concurrent, 0);
        assert_eq!(plan.stats.pair_comparisons, 1);
        // The pruned default reaches the same conclusion (its two binary
        // search probes both count as comparisons).
        let pruned = EpochDetector::new().plan(&[a, b]);
        assert!(pruned.check.is_empty());
        assert_eq!(pruned.stats.pairs_concurrent, 0);
        assert_eq!(pruned.stats.pair_comparisons, 2);
    }

    #[test]
    fn same_process_intervals_skip_comparison() {
        let a = make_interval(0, 1, vec![1, 0], &[1], &[]);
        let b = make_interval(0, 2, vec![2, 0], &[1], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.stats.pair_comparisons, 0);
        assert!(plan.check.is_empty());
    }

    #[test]
    fn plan_builds_check_list_and_requests() {
        let a = make_interval(0, 1, vec![1, 0], &[4], &[9]);
        let b = make_interval(1, 1, vec![0, 1], &[9], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.check.len(), 1);
        let entry = &plan.check.entries[0];
        assert_eq!(entry.pages, vec![PageId(9)]);
        let reqs: Vec<_> = plan.bitmap_requests().collect();
        assert_eq!(reqs.len(), 2);
        assert_eq!(plan.stats.intervals_used, 2);
        assert_eq!(plan.stats.intervals_total, 2);
        // a has 2 notices, b has 1: denominator is 3; 2 requested.
        assert_eq!(plan.stats.bitmaps_total, 3);
        assert_eq!(plan.stats.bitmaps_requested, 2);
    }

    #[test]
    fn compare_separates_false_and_true_sharing() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);

        // False sharing: different words of page 0.
        let mut store = BitmapStore::new();
        let mut ba = PageBitmaps::new(g.page_words);
        ba.write.set(0);
        let mut bb = PageBitmaps::new(g.page_words);
        bb.write.set(1);
        store.insert(a.id(), PageId(0), ba.clone());
        store.insert(b.id(), PageId(0), bb);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert!(reports.is_empty(), "false sharing must not be reported");
        assert_eq!(plan.stats.bitmap_comparisons, 1);

        // True sharing: same word.
        let mut plan2 = d.plan(&[a.clone(), b.clone()]);
        let mut bb2 = PageBitmaps::new(g.page_words);
        bb2.write.set(0);
        let mut store2 = BitmapStore::new();
        store2.insert(a.id(), PageId(0), ba);
        store2.insert(b.id(), PageId(0), bb2);
        let reports = d.compare(&mut plan2, &store2, g, 5).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::WriteWrite);
        assert_eq!(reports[0].addr, g.addr_of(PageId(0), 0));
        assert_eq!(reports[0].epoch, 5);
        assert_eq!(plan2.stats.races_found, 1);
    }

    #[test]
    fn compare_reports_read_write_in_both_directions() {
        let g = Geometry::default();
        // a reads word 3 of page 2; b writes it.
        let a = make_interval(0, 1, vec![1, 0], &[], &[2]);
        let b = make_interval(1, 1, vec![0, 1], &[2], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);
        let mut store = BitmapStore::new();
        let mut ba = PageBitmaps::new(g.page_words);
        ba.read.set(3);
        let mut bb = PageBitmaps::new(g.page_words);
        bb.write.set(3);
        store.insert(a.id(), PageId(2), ba);
        store.insert(b.id(), PageId(2), bb);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::ReadWrite);
        assert_eq!(reports[0].addr, g.addr_of(PageId(2), 3));
    }

    #[test]
    fn write_write_takes_precedence_over_read_write() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[0]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[0]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);
        let mut store = BitmapStore::new();
        // Both read AND write word 7.
        let mut bm = PageBitmaps::new(g.page_words);
        bm.read.set(7);
        bm.write.set(7);
        store.insert(a.id(), PageId(0), bm.clone());
        store.insert(b.id(), PageId(0), bm);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert_eq!(reports.len(), 1, "one report per racy word per pair");
        assert_eq!(reports[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn missing_bitmap_is_an_error() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b]);
        let err = d.compare(&mut plan, &BitmapStore::new(), g, 0).unwrap_err();
        assert!(matches!(err, DetectError::MissingBitmap { .. }));
        assert!(err.to_string().contains("missing access bitmap"));
    }

    #[test]
    fn bitmap_store_eviction() {
        let mut store = BitmapStore::new();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        store.insert(a.id(), PageId(0), PageBitmaps::new(8));
        store.insert(a.id(), PageId(1), PageBitmaps::new(8));
        assert_eq!(store.len(), 2);
        store.evict_interval(a.id());
        assert!(store.is_empty());
    }

    #[test]
    fn quiet_pairs_do_not_reach_overlap() {
        let a = make_interval(0, 1, vec![1, 0], &[], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.stats.pairs_concurrent, 1);
        assert_eq!(plan.stats.pairs_overlapping, 0);
        assert_eq!(plan.stats.intervals_used, 0);
    }

    #[test]
    fn balanced_ranges_partition_without_reordering() {
        for (weights, shards) in [
            (vec![1u64; 10], 3),
            (vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0], 4),
            (vec![0, 0, 5], 2),
            (vec![5], 8),
            (vec![0, 0, 0], 2),
            ((0..100).collect::<Vec<u64>>(), 7),
        ] {
            let ranges = balanced_ranges(&weights, shards);
            assert!(ranges.len() <= shards, "{weights:?} x{shards}");
            // Contiguous cover of 0..n with no gaps or overlaps.
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{weights:?} x{shards}");
                assert!(r.end > r.start, "empty shard for {weights:?}");
                next = r.end;
            }
            assert_eq!(next, weights.len());
        }
        assert!(balanced_ranges(&[], 4).is_empty());
    }

    /// A multi-epoch-sized synthetic input: plans, reports, and statistics
    /// must be bit-identical for every worker count and both enumerations.
    #[test]
    fn worker_count_never_changes_the_result() {
        let g = Geometry { page_words: 128 };
        // A mix of ordered and concurrent intervals across 4 procs with
        // clustered page accesses (deterministic LCG).
        let nprocs = 4usize;
        let mut seed = 0x9e37u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut intervals = Vec::new();
        let mut store = BitmapStore::new();
        for p in 0..nprocs {
            // Knowledge of each peer must be non-decreasing in program
            // order (the pruned enumeration's precondition, always true of
            // protocol-produced clocks).
            let mut prev = vec![0u32; nprocs];
            for idx in 1..=6u32 {
                let mut vc = vec![0u32; nprocs];
                for (q, slot) in vc.iter_mut().enumerate() {
                    *slot = if q == p {
                        idx
                    } else {
                        prev[q].max(rng() % (idx + 1))
                    };
                }
                prev.clone_from(&vc);
                let pages: Vec<u32> = (0..(rng() % 4)).map(|_| rng() % 6).collect();
                let reads: Vec<u32> = (0..(rng() % 4)).map(|_| rng() % 6).collect();
                let iv = make_interval(p as u16, idx, vc, &pages, &reads);
                for pg in pages.iter().chain(&reads) {
                    let mut bm = PageBitmaps::new(g.page_words);
                    for _ in 0..3 {
                        let w = (rng() as usize) % g.page_words;
                        if rng() % 2 == 0 {
                            bm.write.set(w);
                        } else {
                            bm.read.set(w);
                        }
                    }
                    store.insert(iv.id(), PageId(*pg), bm);
                }
                intervals.push(iv);
            }
        }
        for enumeration in [PairEnumeration::Naive, PairEnumeration::Pruned] {
            let serial = EpochDetector {
                enumeration,
                workers: 1,
                ..Default::default()
            };
            let mut ref_plan = serial.plan(&intervals);
            let ref_reports = serial.compare(&mut ref_plan, &store, g, 3).unwrap();
            for workers in [2, 3, 8, 64] {
                let par = EpochDetector {
                    enumeration,
                    workers,
                    ..Default::default()
                };
                let mut plan = par.plan(&intervals);
                assert_eq!(
                    plan.check.entries, ref_plan.check.entries,
                    "{enumeration:?} x{workers}: check list diverged"
                );
                assert_eq!(
                    plan.bitmap_requests().collect::<Vec<_>>(),
                    ref_plan.bitmap_requests().collect::<Vec<_>>()
                );
                let reports = par.compare(&mut plan, &store, g, 3).unwrap();
                assert_eq!(reports, ref_reports, "{enumeration:?} x{workers}");
                assert_eq!(plan.stats, ref_plan.stats, "{enumeration:?} x{workers}");
            }
        }
    }

    /// The parallel error path reproduces the serial one: same first
    /// error, same comparison counter at the point of failure.
    #[test]
    fn missing_bitmap_error_is_worker_invariant() {
        let g = Geometry::default();
        // Three concurrent overlapping pairs; only the first has bitmaps.
        let a = make_interval(0, 1, vec![1, 0, 0], &[0, 1], &[]);
        let b = make_interval(1, 1, vec![0, 1, 0], &[0, 1], &[]);
        let c = make_interval(2, 1, vec![0, 0, 1], &[1], &[]);
        let mut store = BitmapStore::new();
        store.insert(a.id(), PageId(0), PageBitmaps::new(g.page_words));
        store.insert(b.id(), PageId(0), PageBitmaps::new(g.page_words));
        let intervals = [a, b, c];
        let serial = EpochDetector {
            workers: 1,
            ..Default::default()
        };
        let mut ref_plan = serial.plan(&intervals);
        let ref_err = serial.compare(&mut ref_plan, &store, g, 0).unwrap_err();
        for workers in [2, 8] {
            let par = EpochDetector {
                workers,
                ..Default::default()
            };
            let mut plan = par.plan(&intervals);
            let err = par.compare(&mut plan, &store, g, 0).unwrap_err();
            assert_eq!(err, ref_err, "x{workers}");
            assert_eq!(
                plan.stats.bitmap_comparisons, ref_plan.stats.bitmap_comparisons,
                "x{workers}"
            );
            assert_eq!(plan.stats.races_found, 0);
        }
    }

    /// Builds a deterministic synthetic epoch: intervals with clustered
    /// page accesses plus matching bitmaps, varied by `seed`.
    fn synth_epoch(seed0: u64, g: Geometry) -> (Vec<Interval>, BitmapStore) {
        let nprocs = 4usize;
        let mut seed = seed0;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let mut intervals = Vec::new();
        let mut store = BitmapStore::new();
        for p in 0..nprocs {
            let mut prev = vec![0u32; nprocs];
            for idx in 1..=5u32 {
                let mut vc = vec![0u32; nprocs];
                for (q, slot) in vc.iter_mut().enumerate() {
                    *slot = if q == p {
                        idx
                    } else {
                        prev[q].max(rng() % (idx + 1))
                    };
                }
                prev.clone_from(&vc);
                let pages: Vec<u32> = (0..(rng() % 4)).map(|_| rng() % 6).collect();
                let reads: Vec<u32> = (0..(rng() % 4)).map(|_| rng() % 6).collect();
                let iv = make_interval(p as u16, idx, vc, &pages, &reads);
                for pg in pages.iter().chain(&reads) {
                    let mut bm = PageBitmaps::new(g.page_words);
                    for _ in 0..3 {
                        let w = (rng() as usize) % g.page_words;
                        if rng() % 2 == 0 {
                            bm.write.set(w);
                        } else {
                            bm.read.set(w);
                        }
                    }
                    store.insert(iv.id(), PageId(*pg), bm);
                }
                intervals.push(iv);
            }
        }
        (intervals, store)
    }

    /// Running two different epochs through one reused [`EpochArena`]
    /// yields exactly the plans and reports of two fresh arenas: leftover
    /// scratch contents never leak into the next epoch's results.
    #[test]
    fn arena_reuse_matches_fresh_arenas() {
        let g = Geometry { page_words: 128 };
        let det = EpochDetector {
            workers: 3,
            ..Default::default()
        };
        let mut arena = EpochArena::new();
        for seed in [0x9e37u64, 0xdead_beef, 0x1234_5678] {
            let (intervals, store) = synth_epoch(seed, g);
            let mut fresh_plan = det.plan_with(&intervals, &mut EpochArena::new());
            let fresh_reports = det
                .compare_with(&mut fresh_plan, &store, g, 7, &mut EpochArena::new())
                .unwrap();
            let mut plan = det.plan_with(&intervals, &mut arena);
            assert_eq!(
                plan.check.entries, fresh_plan.check.entries,
                "seed {seed:#x}"
            );
            let reports = det
                .compare_with(&mut plan, &store, g, 7, &mut arena)
                .unwrap();
            assert_eq!(reports, fresh_reports, "seed {seed:#x}");
            assert_eq!(plan.stats, fresh_plan.stats, "seed {seed:#x}");
        }
    }
}
