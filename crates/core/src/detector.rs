//! The barrier-master comparison algorithm (paper §4, steps 2–5).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use cvm_page::{Bitmap, Geometry, PageBitmaps, PageId};
use cvm_vclock::IntervalId;

use crate::{DetectorStats, Interval, RaceKind, RaceReport};

/// Strategy for intersecting two intervals' page notice lists.
///
/// The paper uses a naive `O(n^2)` scan because lists are "usually very
/// small (i.e. less than ten)" and notes (§6.2) that bitmap-backed page
/// lists would make the comparison linear in the number of pages; all three
/// are implemented (and benchmarked against each other) here.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapStrategy {
    /// Naive scan for short lists, merge for long ones.
    #[default]
    Auto,
    /// The paper's naive `O(n*m)` nested scan.
    Quadratic,
    /// Linear merge of the (sorted) notice lists.
    SortedMerge,
    /// Bitmap over the page id space (§6.2's suggested improvement).
    PageBitmap,
}

/// How concurrent interval pairs are enumerated during planning.
///
/// The paper uses "a very simple interval comparison algorithm ...
/// primarily because the major system overhead is elsewhere", noting that
/// "synchronization and program order allow many of the comparisons to be
/// bypassed".  [`PairEnumeration::Pruned`] implements that bypass: within
/// one process, interval indices are totally ordered and knowledge only
/// grows, so for a fixed interval `a` of process `p`, the intervals of
/// process `q` ordered *before* `a` form a prefix (indices `<=
/// a.vc[q]`) and those ordered *after* form a suffix (the first whose
/// clock has seen `a`); the concurrent ones are the contiguous middle,
/// found by two binary searches instead of a full scan.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PairEnumeration {
    /// The paper's all-pairs scan.
    #[default]
    Naive,
    /// Binary-search pruning over per-process sorted interval lists.
    ///
    /// Requires stamps from a real execution: a process's knowledge of any
    /// peer must be non-decreasing in program order (always true of
    /// clocks produced by the protocol).
    Pruned,
}

/// Classification of one interval pair during planning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairClass {
    /// Ordered by happens-before-1; cannot race.
    Ordered,
    /// Concurrent, but their page access lists are disjoint.
    ConcurrentNoOverlap,
    /// Concurrent with overlapping pages: unsynchronized sharing (true or
    /// false) — goes on the check list.
    ConcurrentOverlap,
}

/// One check-list entry: a concurrent interval pair and the pages both
/// touched in a conflicting way.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckEntry {
    /// First interval (belonging to the lower-numbered process).
    pub a: IntervalId,
    /// Second interval.
    pub b: IntervalId,
    /// Overlapping pages, sorted.
    pub pages: Vec<PageId>,
}

/// The check list (paper §4, step 3): every concurrent interval pair with
/// page overlap, to be resolved at word granularity with bitmaps.
#[derive(Clone, Default, Debug)]
pub struct CheckList {
    /// Entries in discovery order.
    pub entries: Vec<CheckEntry>,
}

impl CheckList {
    /// Returns `true` if nothing needs word-level comparison.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Output of the planning phase (steps 2–3): the check list, the bitmaps to
/// fetch, and the counters accumulated so far.
#[derive(Clone, Debug)]
pub struct DetectionPlan {
    /// Pairs needing bitmap comparison.
    pub check: CheckList,
    /// Statistics for this epoch (bitmap counters filled in during
    /// [`EpochDetector::compare`]).
    pub stats: DetectorStats,
    requests: BTreeSet<(IntervalId, PageId)>,
}

impl DetectionPlan {
    /// Distinct `(interval, page)` bitmaps the master must retrieve in the
    /// extra barrier round (step 4), sorted.
    pub fn bitmap_requests(&self) -> impl Iterator<Item = (IntervalId, PageId)> + '_ {
        self.requests.iter().copied()
    }

    /// Number of distinct bitmaps to retrieve.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }
}

/// Storage for access bitmaps keyed by `(interval, page)`.
///
/// Each node keeps bitmaps for the intervals it created until they have
/// been checked at a barrier; the master assembles the subset named by the
/// check list into one of these before comparing.
#[derive(Clone, Default, Debug)]
pub struct BitmapStore {
    map: HashMap<(IntervalId, PageId), PageBitmaps>,
}

impl BitmapStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BitmapStore::default()
    }

    /// Inserts (or replaces) the bitmaps for `(interval, page)`.
    pub fn insert(&mut self, interval: IntervalId, page: PageId, bitmaps: PageBitmaps) {
        self.map.insert((interval, page), bitmaps);
    }

    /// Looks up the bitmaps for `(interval, page)`.
    pub fn get(&self, interval: IntervalId, page: PageId) -> Option<&PageBitmaps> {
        self.map.get(&(interval, page))
    }

    /// Number of stored bitmap pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every bitmap belonging to `interval`.
    pub fn evict_interval(&mut self, interval: IntervalId) {
        self.map.retain(|(id, _), _| *id != interval);
    }

    /// Retains only the bitmaps whose key satisfies `keep` (used for
    /// epoch-boundary garbage collection).
    pub fn retain(&mut self, mut keep: impl FnMut(&(IntervalId, PageId)) -> bool) {
        self.map.retain(|k, _| keep(k));
    }
}

/// Error from the word-level comparison phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectError {
    /// A bitmap named by the check list was not supplied.
    MissingBitmap {
        /// Interval whose bitmap is missing.
        interval: IntervalId,
        /// Page whose bitmap is missing.
        page: PageId,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::MissingBitmap { interval, page } => {
                write!(f, "missing access bitmap for {interval:?} on {page:?}")
            }
        }
    }
}

impl std::error::Error for DetectError {}

/// The epoch-level race detector run by the barrier master.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochDetector {
    /// Page-list intersection strategy.
    pub overlap: OverlapStrategy,
    /// Concurrent-pair enumeration strategy.
    pub enumeration: PairEnumeration,
}

impl EpochDetector {
    /// Creates a detector with the default (auto) overlap strategy.
    pub fn new() -> Self {
        EpochDetector::default()
    }

    /// Steps 2–3: enumerate concurrent interval pairs among `intervals`
    /// (one barrier epoch) and build the check list.
    ///
    /// Intervals of the same process are never compared — program order
    /// already orders them — so the version-vector comparison count is
    /// bounded by `O(i^2 p^2)` exactly as in the paper.
    pub fn plan(&self, intervals: &[Interval]) -> DetectionPlan {
        let mut stats = DetectorStats {
            intervals_total: intervals.len() as u64,
            ..DetectorStats::default()
        };
        for iv in intervals {
            stats.bitmaps_total +=
                (iv.write_notices.len() + iv.read_notices.len()) as u64;
        }

        let mut plan = Planner {
            detector: self,
            stats,
            check: CheckList::default(),
            requests: BTreeSet::new(),
            used: BTreeSet::new(),
        };
        match self.enumeration {
            PairEnumeration::Naive => plan.naive(intervals),
            PairEnumeration::Pruned => plan.pruned(intervals),
        }
        plan.stats.intervals_used = plan.used.len() as u64;
        plan.stats.bitmaps_requested = plan.requests.len() as u64;
        DetectionPlan {
            check: plan.check,
            stats: plan.stats,
            requests: plan.requests,
        }
    }

    /// Classifies a single interval pair (exposed for the figure-level unit
    /// tests and the ablation benches).
    pub fn classify_pair(&self, a: &Interval, b: &Interval) -> PairClass {
        if !a.stamp.concurrent_with(&b.stamp) {
            return PairClass::Ordered;
        }
        if self.overlap_pages(a, b).is_empty() {
            PairClass::ConcurrentNoOverlap
        } else {
            PairClass::ConcurrentOverlap
        }
    }

    /// Pages on which `a` and `b` conflict: written by one and read *or*
    /// written by the other.
    pub fn overlap_pages(&self, a: &Interval, b: &Interval) -> Vec<PageId> {
        let mut pages = match self.overlap {
            OverlapStrategy::Quadratic => {
                let mut v = quadratic_intersect(&a.write_notices, &b.write_notices);
                v.extend(quadratic_intersect(&a.write_notices, &b.read_notices));
                v.extend(quadratic_intersect(&a.read_notices, &b.write_notices));
                v
            }
            OverlapStrategy::SortedMerge => {
                let mut v = merge_intersect(&a.write_notices, &b.write_notices);
                v.extend(merge_intersect(&a.write_notices, &b.read_notices));
                v.extend(merge_intersect(&a.read_notices, &b.write_notices));
                v
            }
            OverlapStrategy::PageBitmap => bitmap_conflict(a, b),
            OverlapStrategy::Auto => {
                let longest = a
                    .write_notices
                    .len()
                    .max(a.read_notices.len())
                    .max(b.write_notices.len())
                    .max(b.read_notices.len());
                let strategy = if longest <= 16 {
                    OverlapStrategy::Quadratic
                } else {
                    OverlapStrategy::SortedMerge
                };
                return EpochDetector {
                    overlap: strategy,
                    ..*self
                }
                .overlap_pages(a, b);
            }
        };
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Step 5: word-level bitmap comparison for every check-list entry.
    ///
    /// `epoch` tags the resulting reports.  Updates `plan.stats` with the
    /// comparison and race counters.
    ///
    /// # Errors
    ///
    /// [`DetectError::MissingBitmap`] if `bitmaps` lacks an entry named by
    /// the check list.
    pub fn compare(
        &self,
        plan: &mut DetectionPlan,
        bitmaps: &BitmapStore,
        geometry: Geometry,
        epoch: u64,
    ) -> Result<Vec<RaceReport>, DetectError> {
        let mut reports = Vec::new();
        for entry in &plan.check.entries {
            for &page in &entry.pages {
                let ba = bitmaps
                    .get(entry.a, page)
                    .ok_or(DetectError::MissingBitmap {
                        interval: entry.a,
                        page,
                    })?;
                let bb = bitmaps
                    .get(entry.b, page)
                    .ok_or(DetectError::MissingBitmap {
                        interval: entry.b,
                        page,
                    })?;
                plan.stats.bitmap_comparisons += 1;
                compare_page(entry, page, ba, bb, geometry, epoch, &mut reports);
            }
        }
        plan.stats.races_found += reports.len() as u64;
        Ok(reports)
    }
}

/// Planning state shared by both enumeration strategies.
struct Planner<'d> {
    detector: &'d EpochDetector,
    stats: DetectorStats,
    check: CheckList,
    requests: BTreeSet<(IntervalId, PageId)>,
    used: BTreeSet<IntervalId>,
}

impl Planner<'_> {
    /// Handles one *known-concurrent* pair: page overlap + check list.
    fn concurrent_pair(&mut self, a: &Interval, b: &Interval) {
        self.stats.pairs_concurrent += 1;
        if a.is_quiet() && b.is_quiet() {
            return;
        }
        let pages = self.detector.overlap_pages(a, b);
        if pages.is_empty() {
            return;
        }
        self.stats.pairs_overlapping += 1;
        self.used.insert(a.id());
        self.used.insert(b.id());
        for &pg in &pages {
            self.requests.insert((a.id(), pg));
            self.requests.insert((b.id(), pg));
        }
        self.check.entries.push(CheckEntry {
            a: a.id(),
            b: b.id(),
            pages,
        });
    }

    /// The paper's all-pairs scan.
    fn naive(&mut self, intervals: &[Interval]) {
        for (i, a) in intervals.iter().enumerate() {
            for b in &intervals[i + 1..] {
                if a.proc() == b.proc() {
                    continue;
                }
                self.stats.pair_comparisons += 1;
                if a.stamp.concurrent_with(&b.stamp) {
                    self.concurrent_pair(a, b);
                }
            }
        }
    }

    /// Binary-search pruning: per process pair, the intervals of `q`
    /// concurrent with a fixed interval of `p` form a contiguous run.
    fn pruned(&mut self, intervals: &[Interval]) {
        use std::collections::BTreeMap;
        let mut by_proc: BTreeMap<cvm_vclock::ProcId, Vec<&Interval>> = BTreeMap::new();
        for iv in intervals {
            by_proc.entry(iv.proc()).or_default().push(iv);
        }
        for list in by_proc.values_mut() {
            list.sort_by_key(|iv| iv.id().index);
        }
        let procs: Vec<_> = by_proc.keys().copied().collect();
        for (x, &p) in procs.iter().enumerate() {
            for &q in &procs[x + 1..] {
                let pa = &by_proc[&p];
                let qb = &by_proc[&q];
                for a in pa {
                    // Prefix of q ordered before a: indices <= a.vc[q].
                    let known = a.stamp.vc.get(q);
                    let lo = partition_probe(qb, &mut self.stats, |b| {
                        b.id().index <= known
                    });
                    // Suffix of q ordered after a: the first whose clock
                    // has seen a (knowledge is monotone in program order).
                    let own = a.id().index;
                    let hi = partition_probe(&qb[lo..], &mut self.stats, |b| {
                        b.stamp.vc.get(p) < own
                    }) + lo;
                    for b in &qb[lo..hi] {
                        debug_assert!(a.stamp.concurrent_with(&b.stamp));
                        self.concurrent_pair(a, b);
                    }
                }
            }
        }
    }
}

/// `partition_point` that counts each probe as one version-vector
/// comparison in the statistics.
fn partition_probe(
    list: &[&Interval],
    stats: &mut DetectorStats,
    mut pred: impl FnMut(&Interval) -> bool,
) -> usize {
    let mut lo = 0;
    let mut hi = list.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        stats.pair_comparisons += 1;
        if pred(list[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Compares one page's bitmaps for one concurrent interval pair.
fn compare_page(
    entry: &CheckEntry,
    page: PageId,
    a: &PageBitmaps,
    b: &PageBitmaps,
    geometry: Geometry,
    epoch: u64,
    out: &mut Vec<RaceReport>,
) {
    let report = |word: usize, kind: RaceKind| RaceReport {
        addr: geometry.addr_of(page, word),
        kind,
        a: entry.a,
        b: entry.b,
        epoch,
    };
    // Write-write conflicts take precedence; collect them first.
    let mut ww = Bitmap::new(a.write.len());
    for w in a.write.overlap_words(&b.write) {
        ww.set(w);
        out.push(report(w, RaceKind::WriteWrite));
    }
    for w in a.write.overlap_words(&b.read) {
        if !ww.get(w) {
            out.push(report(w, RaceKind::ReadWrite));
        }
    }
    for w in a.read.overlap_words(&b.write) {
        if !ww.get(w) && !a.write.get(w) {
            out.push(report(w, RaceKind::ReadWrite));
        }
    }
}

fn quadratic_intersect(a: &[PageId], b: &[PageId]) -> Vec<PageId> {
    let mut out = Vec::new();
    for &x in a {
        for &y in b {
            if x == y {
                out.push(x);
            }
        }
    }
    out
}

fn merge_intersect(a: &[PageId], b: &[PageId]) -> Vec<PageId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn bitmap_conflict(a: &Interval, b: &Interval) -> Vec<PageId> {
    let max_page = a
        .pages_touched()
        .iter()
        .chain(b.pages_touched().iter())
        .map(|p| p.0)
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut wa = Bitmap::new(max_page);
    let mut ra = Bitmap::new(max_page);
    let mut wb = Bitmap::new(max_page);
    let mut rb = Bitmap::new(max_page);
    for p in &a.write_notices {
        wa.set(p.index());
    }
    for p in &a.read_notices {
        ra.set(p.index());
    }
    for p in &b.write_notices {
        wb.set(p.index());
    }
    for p in &b.read_notices {
        rb.set(p.index());
    }
    let mut out: Vec<PageId> = wa
        .overlap_words(&wb)
        .chain(wa.overlap_words(&rb))
        .chain(ra.overlap_words(&wb))
        .map(|i| PageId(i as u32))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::make_interval;

    const STRATEGIES: [OverlapStrategy; 4] = [
        OverlapStrategy::Auto,
        OverlapStrategy::Quadratic,
        OverlapStrategy::SortedMerge,
        OverlapStrategy::PageBitmap,
    ];

    #[test]
    fn overlap_requires_a_writer() {
        // Read-read sharing on page 3 is not a conflict.
        let a = make_interval(0, 1, vec![1, 0], &[], &[3]);
        let b = make_interval(1, 1, vec![0, 1], &[], &[3]);
        for s in STRATEGIES {
            let d = EpochDetector { overlap: s, ..Default::default() };
            assert!(d.overlap_pages(&a, &b).is_empty(), "{s:?}");
            assert_eq!(d.classify_pair(&a, &b), PairClass::ConcurrentNoOverlap);
        }
    }

    #[test]
    fn overlap_detects_all_three_conflict_shapes() {
        // a writes 1, reads 2; b writes 2, reads 1; both write 5.
        let a = make_interval(0, 1, vec![1, 0], &[1, 5], &[2]);
        let b = make_interval(1, 1, vec![0, 1], &[2, 5], &[1]);
        for s in STRATEGIES {
            let d = EpochDetector { overlap: s, ..Default::default() };
            assert_eq!(
                d.overlap_pages(&a, &b),
                vec![PageId(1), PageId(2), PageId(5)],
                "{s:?}"
            );
        }
    }

    #[test]
    fn ordered_pairs_are_never_checked() {
        // b's clock has seen a's interval: ordered, even with page overlap.
        let a = make_interval(0, 1, vec![1, 0], &[7], &[]);
        let b = make_interval(1, 1, vec![1, 1], &[7], &[]);
        let d = EpochDetector::new();
        assert_eq!(d.classify_pair(&a, &b), PairClass::Ordered);
        let plan = d.plan(&[a, b]);
        assert!(plan.check.is_empty());
        assert_eq!(plan.stats.pairs_concurrent, 0);
        assert_eq!(plan.stats.pair_comparisons, 1);
    }

    #[test]
    fn same_process_intervals_skip_comparison() {
        let a = make_interval(0, 1, vec![1, 0], &[1], &[]);
        let b = make_interval(0, 2, vec![2, 0], &[1], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.stats.pair_comparisons, 0);
        assert!(plan.check.is_empty());
    }

    #[test]
    fn plan_builds_check_list_and_requests() {
        let a = make_interval(0, 1, vec![1, 0], &[4], &[9]);
        let b = make_interval(1, 1, vec![0, 1], &[9], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.check.len(), 1);
        let entry = &plan.check.entries[0];
        assert_eq!(entry.pages, vec![PageId(9)]);
        let reqs: Vec<_> = plan.bitmap_requests().collect();
        assert_eq!(reqs.len(), 2);
        assert_eq!(plan.stats.intervals_used, 2);
        assert_eq!(plan.stats.intervals_total, 2);
        // a has 2 notices, b has 1: denominator is 3; 2 requested.
        assert_eq!(plan.stats.bitmaps_total, 3);
        assert_eq!(plan.stats.bitmaps_requested, 2);
    }

    #[test]
    fn compare_separates_false_and_true_sharing() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);

        // False sharing: different words of page 0.
        let mut store = BitmapStore::new();
        let mut ba = PageBitmaps::new(g.page_words);
        ba.write.set(0);
        let mut bb = PageBitmaps::new(g.page_words);
        bb.write.set(1);
        store.insert(a.id(), PageId(0), ba.clone());
        store.insert(b.id(), PageId(0), bb);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert!(reports.is_empty(), "false sharing must not be reported");
        assert_eq!(plan.stats.bitmap_comparisons, 1);

        // True sharing: same word.
        let mut plan2 = d.plan(&[a.clone(), b.clone()]);
        let mut bb2 = PageBitmaps::new(g.page_words);
        bb2.write.set(0);
        let mut store2 = BitmapStore::new();
        store2.insert(a.id(), PageId(0), ba);
        store2.insert(b.id(), PageId(0), bb2);
        let reports = d.compare(&mut plan2, &store2, g, 5).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::WriteWrite);
        assert_eq!(reports[0].addr, g.addr_of(PageId(0), 0));
        assert_eq!(reports[0].epoch, 5);
        assert_eq!(plan2.stats.races_found, 1);
    }

    #[test]
    fn compare_reports_read_write_in_both_directions() {
        let g = Geometry::default();
        // a reads word 3 of page 2; b writes it.
        let a = make_interval(0, 1, vec![1, 0], &[], &[2]);
        let b = make_interval(1, 1, vec![0, 1], &[2], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);
        let mut store = BitmapStore::new();
        let mut ba = PageBitmaps::new(g.page_words);
        ba.read.set(3);
        let mut bb = PageBitmaps::new(g.page_words);
        bb.write.set(3);
        store.insert(a.id(), PageId(2), ba);
        store.insert(b.id(), PageId(2), bb);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::ReadWrite);
        assert_eq!(reports[0].addr, g.addr_of(PageId(2), 3));
    }

    #[test]
    fn write_write_takes_precedence_over_read_write() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[0]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[0]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b.clone()]);
        let mut store = BitmapStore::new();
        // Both read AND write word 7.
        let mut bm = PageBitmaps::new(g.page_words);
        bm.read.set(7);
        bm.write.set(7);
        store.insert(a.id(), PageId(0), bm.clone());
        store.insert(b.id(), PageId(0), bm);
        let reports = d.compare(&mut plan, &store, g, 0).unwrap();
        assert_eq!(reports.len(), 1, "one report per racy word per pair");
        assert_eq!(reports[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn missing_bitmap_is_an_error() {
        let g = Geometry::default();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[0], &[]);
        let d = EpochDetector::new();
        let mut plan = d.plan(&[a.clone(), b]);
        let err = d
            .compare(&mut plan, &BitmapStore::new(), g, 0)
            .unwrap_err();
        assert!(matches!(err, DetectError::MissingBitmap { .. }));
        assert!(err.to_string().contains("missing access bitmap"));
    }

    #[test]
    fn bitmap_store_eviction() {
        let mut store = BitmapStore::new();
        let a = make_interval(0, 1, vec![1, 0], &[0], &[]);
        store.insert(a.id(), PageId(0), PageBitmaps::new(8));
        store.insert(a.id(), PageId(1), PageBitmaps::new(8));
        assert_eq!(store.len(), 2);
        store.evict_interval(a.id());
        assert!(store.is_empty());
    }

    #[test]
    fn quiet_pairs_do_not_reach_overlap() {
        let a = make_interval(0, 1, vec![1, 0], &[], &[]);
        let b = make_interval(1, 1, vec![0, 1], &[], &[]);
        let plan = EpochDetector::new().plan(&[a, b]);
        assert_eq!(plan.stats.pairs_concurrent, 1);
        assert_eq!(plan.stats.pairs_overlapping, 0);
        assert_eq!(plan.stats.intervals_used, 0);
    }
}
