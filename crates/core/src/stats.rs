//! Detector statistics feeding the paper's Table 3 and Figure 3.

/// Counters produced by the barrier-master comparison algorithm.
///
/// Percentages derived from these counters reproduce the first two columns
/// of the paper's Table 3 ("Intervals Used" and "Bitmaps Used"); the raw
/// comparison counts drive the cost model behind Figure 3's "Intervals" and
/// "Bitmaps" bars.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Intervals examined across all epochs.
    pub intervals_total: u64,
    /// Intervals involved in at least one concurrent pair with page overlap
    /// (i.e. exhibiting unsynchronized sharing, true or false).
    pub intervals_used: u64,
    /// Version-vector comparisons performed (constant-time each).
    pub pair_comparisons: u64,
    /// Pairs found concurrent.
    pub pairs_concurrent: u64,
    /// Concurrent pairs whose page notice lists overlap (the check list).
    pub pairs_overlapping: u64,
    /// Distinct `(interval, page)` bitmaps retrieved in the extra round.
    pub bitmaps_requested: u64,
    /// Total `(interval, page)` access pairs (read or write notices) —
    /// the denominator of "Bitmaps Used".
    pub bitmaps_total: u64,
    /// Word-level bitmap comparisons performed.
    pub bitmap_comparisons: u64,
    /// Races reported (one per racy word per interval pair).
    pub races_found: u64,
}

impl DetectorStats {
    /// Accumulates another epoch's counters.
    pub fn add(&mut self, other: &DetectorStats) {
        self.intervals_total += other.intervals_total;
        self.intervals_used += other.intervals_used;
        self.pair_comparisons += other.pair_comparisons;
        self.pairs_concurrent += other.pairs_concurrent;
        self.pairs_overlapping += other.pairs_overlapping;
        self.bitmaps_requested += other.bitmaps_requested;
        self.bitmaps_total += other.bitmaps_total;
        self.bitmap_comparisons += other.bitmap_comparisons;
        self.races_found += other.races_found;
    }

    /// Table 3, column 1: fraction of intervals involved in at least one
    /// concurrent pair with page overlap.
    pub fn intervals_used_frac(&self) -> f64 {
        ratio(self.intervals_used, self.intervals_total)
    }

    /// Table 3, column 2: fraction of access bitmaps that had to be
    /// retrieved to distinguish false from true sharing.
    pub fn bitmaps_used_frac(&self) -> f64 {
        ratio(self.bitmaps_requested, self.bitmaps_total)
    }

    /// Fraction of compared pairs that were concurrent — how much of the
    /// quadratic pair space LRC ordering eliminates (the paper's "over 70%
    /// of all program execution" dynamic-elimination claim).
    pub fn pairs_concurrent_frac(&self) -> f64 {
        ratio(self.pairs_concurrent, self.pair_comparisons)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero_denominators() {
        let s = DetectorStats::default();
        assert_eq!(s.intervals_used_frac(), 0.0);
        assert_eq!(s.bitmaps_used_frac(), 0.0);
        assert_eq!(s.pairs_concurrent_frac(), 0.0);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = DetectorStats {
            intervals_total: 1,
            intervals_used: 1,
            pair_comparisons: 2,
            pairs_concurrent: 1,
            pairs_overlapping: 1,
            bitmaps_requested: 3,
            bitmaps_total: 4,
            bitmap_comparisons: 5,
            races_found: 6,
        };
        a.add(&a.clone());
        assert_eq!(a.intervals_total, 2);
        assert_eq!(a.races_found, 12);
        assert_eq!(a.bitmaps_total, 8);
    }

    #[test]
    fn fractions_compute_ratios() {
        let s = DetectorStats {
            intervals_total: 100,
            intervals_used: 15,
            bitmaps_requested: 1,
            bitmaps_total: 100,
            pair_comparisons: 10,
            pairs_concurrent: 7,
            ..Default::default()
        };
        assert!((s.intervals_used_frac() - 0.15).abs() < 1e-12);
        assert!((s.bitmaps_used_frac() - 0.01).abs() < 1e-12);
        assert!((s.pairs_concurrent_frac() - 0.7).abs() < 1e-12);
    }
}
