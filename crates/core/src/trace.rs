//! The post-mortem baseline: trace logs + offline analysis.
//!
//! The paper's closest prior work (Adve, Hill, Miller & Netzer, "Detecting
//! data races on weak memory systems") is a *post-mortem* technique: the
//! run writes trace logs of synchronization events (with enough
//! information to derive their relative order) and computation events
//! (with READ/WRITE attributes); an offline pass reconstructs the ordering
//! and compares accesses.  The paper's pitch is that LRC metadata makes
//! the same analysis possible *online*, "do[ing] away with trace logs,
//! post-mortem analysis, and much of the overhead".
//!
//! To measure that claim rather than assert it, this module implements the
//! baseline: [`TraceEvent`] is the per-process log record, and
//! [`analyze_trace`] is the offline analyzer.  `cvm-dsm` can record traces
//! (`DsmConfig::trace`) with or without the online detector, so the two
//! approaches run on identical executions: equal race reports, very
//! different storage behaviour (the trace grows without bound; the online
//! detector's retained state is garbage-collected every barrier).

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::Path;

use cvm_net::wire::{Reader, Wire, WireError};
use cvm_page::{Geometry, PageBitmaps, PageId};
use cvm_vclock::{IntervalId, ProcId, VClock};

use crate::{RaceKind, RaceReport};

/// One record in a process's trace log.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A computation event: the shared accesses performed since the
    /// previous synchronization event, as per-page read/write bitmaps
    /// (the READ/WRITE attributes of the baseline).
    Computation {
        /// Accessed pages and their word bitmaps.
        pages: Vec<(PageId, PageBitmaps)>,
    },
    /// A lock release.
    Release {
        /// The lock.
        lock: u32,
    },
    /// A lock acquire, with the releaser's identity: the process and the
    /// index of its `Release` event this acquire pairs with (`None` for a
    /// reacquired cached token or a pristine manager token — no
    /// cross-process edge).
    Acquire {
        /// The lock.
        lock: u32,
        /// `(releaser, releaser's trace index of the paired Release)`.
        from: Option<(ProcId, u32)>,
    },
    /// Arrival at global barrier number `epoch`.
    BarrierArrive {
        /// Barrier epoch (0-based).
        epoch: u64,
    },
    /// Resumption from global barrier number `epoch`.
    BarrierResume {
        /// Barrier epoch (0-based).
        epoch: u64,
    },
}

impl TraceEvent {
    /// Approximate on-disk size of this record in bytes (what the baseline
    /// would have written to its trace file).
    pub fn trace_bytes(&self) -> u64 {
        match self {
            TraceEvent::Computation { pages } => {
                8 + pages.iter().map(|(_, bm)| 4 + bm.wire_bytes()).sum::<u64>()
            }
            TraceEvent::Release { .. } => 8,
            TraceEvent::Acquire { .. } => 16,
            TraceEvent::BarrierArrive { .. } | TraceEvent::BarrierResume { .. } => 12,
        }
    }
}

impl Wire for TraceEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TraceEvent::Computation { pages } => {
                buf.push(0);
                pages.encode(buf);
            }
            TraceEvent::Release { lock } => {
                buf.push(1);
                lock.encode(buf);
            }
            TraceEvent::Acquire { lock, from } => {
                buf.push(2);
                lock.encode(buf);
                from.encode(buf);
            }
            TraceEvent::BarrierArrive { epoch } => {
                buf.push(3);
                epoch.encode(buf);
            }
            TraceEvent::BarrierResume { epoch } => {
                buf.push(4);
                epoch.encode(buf);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => TraceEvent::Computation {
                pages: Vec::<(PageId, PageBitmaps)>::decode(r)?,
            },
            1 => TraceEvent::Release {
                lock: u32::decode(r)?,
            },
            2 => TraceEvent::Acquire {
                lock: u32::decode(r)?,
                from: Option::<(ProcId, u32)>::decode(r)?,
            },
            3 => TraceEvent::BarrierArrive {
                epoch: u64::decode(r)?,
            },
            4 => TraceEvent::BarrierResume {
                epoch: u64::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "TraceEvent",
                    tag,
                })
            }
        })
    }
}

/// Writes per-process trace logs to disk, one file per process — the
/// deployment shape of the post-mortem baseline, whose trace files are
/// analyzed after the run ends.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_traces(dir: &Path, traces: &[Vec<TraceEvent>]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (p, log) in traces.iter().enumerate() {
        let mut buf = Vec::new();
        log.to_vec().encode(&mut buf);
        let mut f = std::fs::File::create(dir.join(format!("trace-p{p}.bin")))?;
        f.write_all(&buf)?;
    }
    Ok(())
}

/// Loads trace logs previously written by [`save_traces`].
///
/// # Errors
///
/// Propagates filesystem errors; malformed files surface as
/// `InvalidData`.
pub fn load_traces(dir: &Path, nprocs: usize) -> std::io::Result<Vec<Vec<TraceEvent>>> {
    let mut traces = Vec::with_capacity(nprocs);
    for p in 0..nprocs {
        let mut bytes = Vec::new();
        std::fs::File::open(dir.join(format!("trace-p{p}.bin")))?.read_to_end(&mut bytes)?;
        let log = Vec::<TraceEvent>::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        traces.push(log);
    }
    Ok(traces)
}

/// Statistics of one post-mortem analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PostmortemStats {
    /// Total trace records across processes.
    pub events: u64,
    /// Approximate trace-file bytes the baseline would have stored.
    pub trace_bytes: u64,
    /// Computation-event pairs compared at word level.
    pub pairs_compared: u64,
    /// Races found.
    pub races: u64,
}

/// Runs the offline analysis over per-process trace logs.
///
/// Ordering reconstruction: program order within each log, release→acquire
/// edges from the recorded pairings, and all-arrive-before-all-resume
/// edges for each barrier epoch.  Event vector clocks are computed in one
/// forward pass per process with cross-edges resolved iteratively (the
/// logs form a DAG).  Unordered computation-event pairs are compared at
/// word granularity exactly like the online detector's step 5.
///
/// Reports use `(process, computation-event ordinal)` as the interval
/// identity and the barrier epoch the event belongs to.
///
/// # Panics
///
/// Panics if an `Acquire` names a releaser event that is not a `Release`
/// in the referenced log — a corrupt trace.
pub fn analyze_trace(
    traces: &[Vec<TraceEvent>],
    geometry: Geometry,
) -> (Vec<RaceReport>, PostmortemStats) {
    let nprocs = traces.len();
    let mut stats = PostmortemStats::default();
    for log in traces {
        stats.events += log.len() as u64;
        stats.trace_bytes += log.iter().map(TraceEvent::trace_bytes).sum::<u64>();
    }

    // Assign each event a vector clock (width = nprocs, one entry per
    // process counting its events).  Cross edges: acquire joins the clock
    // of the paired release; barrier-resume joins the clocks of every
    // arrival of that epoch.
    let mut clocks: Vec<Vec<VClock>> = traces
        .iter()
        .map(|log| vec![VClock::new(nprocs); log.len()])
        .collect();
    // Pre-index barrier arrivals per epoch.
    let mut arrivals: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
    for (p, log) in traces.iter().enumerate() {
        for (i, ev) in log.iter().enumerate() {
            if let TraceEvent::BarrierArrive { epoch } = ev {
                arrivals.entry(*epoch).or_default().push((p, i));
            }
        }
    }
    // Forward passes until stable (cross edges only point to events with
    // lower epoch/step, so two passes suffice for barriers; lock edges can
    // chain, so iterate to fixpoint — logs are DAGs, this terminates).
    let mut changed = true;
    while changed {
        changed = false;
        for (p, log) in traces.iter().enumerate() {
            let me = ProcId::from_index(p);
            let mut cur = VClock::new(nprocs);
            for (i, ev) in log.iter().enumerate() {
                cur.bump(me);
                match ev {
                    TraceEvent::Acquire {
                        from: Some((q, rel_idx)),
                        ..
                    } => {
                        let q_idx = q.index();
                        let rel = *rel_idx as usize;
                        assert!(
                            matches!(traces[q_idx][rel], TraceEvent::Release { .. }),
                            "acquire pairs with a non-release event: corrupt trace"
                        );
                        cur.merge(&clocks[q_idx][rel]);
                    }
                    TraceEvent::BarrierResume { epoch } => {
                        if let Some(arr) = arrivals.get(epoch) {
                            for &(q, i_arr) in arr {
                                cur.merge(&clocks[q][i_arr]);
                            }
                        }
                    }
                    _ => {}
                }
                if clocks[p][i] != cur {
                    clocks[p][i] = cur.clone();
                    changed = true;
                }
            }
        }
    }

    // Collect computation events with identities and epochs.
    struct Comp<'a> {
        proc: ProcId,
        ordinal: u32,
        epoch: u64,
        clock: VClock,
        /// Own-process event count at this event (for the ordering test).
        step: u32,
        pages: &'a [(PageId, PageBitmaps)],
    }
    let mut comps: Vec<Comp<'_>> = Vec::new();
    for (p, log) in traces.iter().enumerate() {
        let mut ordinal = 0;
        let mut epoch = 0;
        for (i, ev) in log.iter().enumerate() {
            match ev {
                TraceEvent::Computation { pages } => {
                    ordinal += 1;
                    comps.push(Comp {
                        proc: ProcId::from_index(p),
                        ordinal,
                        epoch,
                        clock: clocks[p][i].clone(),
                        step: i as u32 + 1,
                        pages,
                    });
                }
                TraceEvent::BarrierResume { .. } => epoch += 1,
                _ => {}
            }
        }
    }

    // Compare unordered pairs.  Event a precedes event b iff b's clock has
    // seen a's step on a's process.
    let mut reports = Vec::new();
    for (x, a) in comps.iter().enumerate() {
        for b in comps.iter().skip(x + 1) {
            if a.proc == b.proc {
                continue;
            }
            let a_before_b = b.clock.get(a.proc) >= a.step;
            let b_before_a = a.clock.get(b.proc) >= b.step;
            if a_before_b || b_before_a {
                continue;
            }
            for (pa, bma) in a.pages {
                for (pb, bmb) in b.pages {
                    if pa != pb {
                        continue;
                    }
                    stats.pairs_compared += 1;
                    let report = |word: usize, kind: RaceKind| RaceReport {
                        addr: geometry.addr_of(*pa, word),
                        kind,
                        a: IntervalId::new(a.proc, a.ordinal),
                        b: IntervalId::new(b.proc, b.ordinal),
                        epoch: a.epoch.min(b.epoch),
                    };
                    // Same precedence as the online step 5: write-write
                    // first, then read-write pairs not already reported.
                    for w in bma.write.overlap_words(&bmb.write) {
                        reports.push(report(w, RaceKind::WriteWrite));
                    }
                    for w in bma.write.overlap_words(&bmb.read) {
                        if !bmb.write.get(w) {
                            reports.push(report(w, RaceKind::ReadWrite));
                        }
                    }
                    for w in bma.read.overlap_words(&bmb.write) {
                        if !bma.write.get(w) {
                            reports.push(report(w, RaceKind::ReadWrite));
                        }
                    }
                }
            }
        }
    }
    stats.races = reports.len() as u64;
    (reports, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(pages: Vec<(u32, &[usize], &[usize])>) -> TraceEvent {
        TraceEvent::Computation {
            pages: pages
                .into_iter()
                .map(|(p, reads, writes)| {
                    let mut bm = PageBitmaps::new(64);
                    for &w in reads {
                        bm.read.set(w);
                    }
                    for &w in writes {
                        bm.write.set(w);
                    }
                    (PageId(p), bm)
                })
                .collect(),
        }
    }

    fn g() -> Geometry {
        Geometry { page_words: 64 }
    }

    #[test]
    fn unordered_writes_race() {
        let traces = vec![
            vec![
                comp(vec![(0, &[], &[3])]),
                TraceEvent::BarrierArrive { epoch: 0 },
            ],
            vec![
                comp(vec![(0, &[], &[3])]),
                TraceEvent::BarrierArrive { epoch: 0 },
            ],
        ];
        let (reports, stats) = analyze_trace(&traces, g());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::WriteWrite);
        assert_eq!(reports[0].addr, g().addr_of(PageId(0), 3));
        assert_eq!(stats.races, 1);
        assert!(stats.trace_bytes > 0);
    }

    #[test]
    fn barrier_orders_computation_events() {
        let traces = vec![
            vec![
                comp(vec![(0, &[], &[3])]),
                TraceEvent::BarrierArrive { epoch: 0 },
                TraceEvent::BarrierResume { epoch: 0 },
            ],
            vec![
                TraceEvent::BarrierArrive { epoch: 0 },
                TraceEvent::BarrierResume { epoch: 0 },
                comp(vec![(0, &[3], &[])]),
            ],
        ];
        let (reports, _) = analyze_trace(&traces, g());
        assert!(reports.is_empty(), "barrier-ordered accesses: {reports:?}");
    }

    #[test]
    fn lock_edge_orders_critical_sections() {
        // P0: CS writes word 5, releases (event index 2).
        // P1: acquires from P0's release, CS writes word 5.
        let traces = vec![
            vec![
                TraceEvent::Acquire {
                    lock: 1,
                    from: None,
                },
                comp(vec![(2, &[], &[5])]),
                TraceEvent::Release { lock: 1 },
            ],
            vec![
                TraceEvent::Acquire {
                    lock: 1,
                    from: Some((ProcId(0), 2)),
                },
                comp(vec![(2, &[], &[5])]),
                TraceEvent::Release { lock: 1 },
            ],
        ];
        let (reports, _) = analyze_trace(&traces, g());
        assert!(reports.is_empty(), "lock-ordered accesses: {reports:?}");
    }

    #[test]
    fn missing_lock_edge_races() {
        let traces = vec![
            vec![
                TraceEvent::Acquire {
                    lock: 1,
                    from: None,
                },
                comp(vec![(2, &[], &[5])]),
                TraceEvent::Release { lock: 1 },
            ],
            vec![
                // No acquire pairing: independent critical section on a
                // DIFFERENT lock.
                TraceEvent::Acquire {
                    lock: 2,
                    from: None,
                },
                comp(vec![(2, &[], &[5])]),
                TraceEvent::Release { lock: 2 },
            ],
        ];
        let (reports, _) = analyze_trace(&traces, g());
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn transitive_lock_chains_order() {
        // P0 rel -> P1 acq ... P1 rel -> P2 acq: P0's write ordered before
        // P2's.
        let traces = vec![
            vec![comp(vec![(0, &[], &[1])]), TraceEvent::Release { lock: 1 }],
            vec![
                TraceEvent::Acquire {
                    lock: 1,
                    from: Some((ProcId(0), 1)),
                },
                TraceEvent::Release { lock: 1 },
            ],
            vec![
                TraceEvent::Acquire {
                    lock: 1,
                    from: Some((ProcId(1), 1)),
                },
                comp(vec![(0, &[], &[1])]),
            ],
        ];
        let (reports, _) = analyze_trace(&traces, g());
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn read_write_pairs_reported_once() {
        let traces = vec![
            vec![comp(vec![(1, &[7], &[])])],
            vec![comp(vec![(1, &[], &[7])])],
        ];
        let (reports, _) = analyze_trace(&traces, g());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn empty_traces_are_clean() {
        let (reports, stats) = analyze_trace(&[vec![], vec![]], g());
        assert!(reports.is_empty());
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn trace_files_roundtrip() {
        let traces = vec![
            vec![
                TraceEvent::Acquire {
                    lock: 3,
                    from: None,
                },
                comp(vec![(1, &[2], &[5])]),
                TraceEvent::Release { lock: 3 },
                TraceEvent::BarrierArrive { epoch: 0 },
                TraceEvent::BarrierResume { epoch: 0 },
            ],
            vec![TraceEvent::Acquire {
                lock: 3,
                from: Some((ProcId(0), 2)),
            }],
        ];
        let dir = std::env::temp_dir().join(format!("cvm-trace-test-{}", std::process::id()));
        save_traces(&dir, &traces).unwrap();
        let loaded = load_traces(&dir, 2).unwrap();
        assert_eq!(loaded, traces);
        // Offline analysis works identically on reloaded logs.
        let (a, _) = analyze_trace(&traces, g());
        let (b, _) = analyze_trace(&loaded, g());
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_trace_file_is_invalid_data() {
        let dir = std::env::temp_dir().join(format!("cvm-trace-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("trace-p0.bin"), [9, 9, 9]).unwrap();
        let err = load_traces(&dir, 1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(dir);
    }
}
