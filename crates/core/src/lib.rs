//! On-the-fly data-race detection via coherency guarantees.
//!
//! This crate is the paper's contribution (Perković & Keleher, OSDI '96):
//! an online race detector that leverages the ordering metadata a lazy
//! release consistent DSM already maintains.  The key intuition:
//!
//! > LRC implementations already maintain enough ordering information to
//! > make a constant-time determination of whether any two accesses are
//! > concurrent.
//!
//! A *data race* (Definition 2) is a pair of accesses to the same shared
//! variable, at least one a write, that are unordered by happens-before-1.
//! The detector runs at global synchronization points (barriers) in five
//! steps (§4):
//!
//! 1. intervals arrive at the barrier master carrying version vectors,
//!    *write notices*, and — the paper's addition — *read notices*;
//! 2. the master enumerates concurrent interval pairs (constant-time
//!    version-vector checks, see [`cvm_vclock::IntervalStamp`]);
//! 3. pairs whose page notice lists overlap go on the *check list*;
//! 4. an extra barrier round retrieves word-granularity access bitmaps for
//!    listed pages;
//! 5. bitmap intersection distinguishes false sharing from true races and
//!    reports the racy words.
//!
//! The crate is pure algorithm + data structures: the DSM engine in
//! `cvm-dsm` feeds it intervals and bitmaps.  This keeps every step
//! unit-testable without spinning up a cluster.
//!
//! # Examples
//!
//! Two concurrent intervals both write word 0 of page 3:
//!
//! ```
//! use cvm_page::{Geometry, PageBitmaps, PageId};
//! use cvm_race::{make_interval, BitmapStore, EpochDetector, RaceKind};
//!
//! let a = make_interval(0, 1, vec![1, 0], &[3], &[]); // P0 wrote page 3.
//! let b = make_interval(1, 1, vec![0, 1], &[3], &[]); // P1 wrote page 3.
//!
//! let detector = EpochDetector::new();
//! let mut plan = detector.plan(&[a.clone(), b.clone()]);
//! assert_eq!(plan.check.len(), 1);                    // On the check list.
//!
//! let mut store = BitmapStore::new();
//! let mut bm = PageBitmaps::new(512);
//! bm.write.set(0);
//! store.insert(a.id(), PageId(3), bm.clone());
//! store.insert(b.id(), PageId(3), bm);
//!
//! let geometry = Geometry::default();
//! let races = detector.compare(&mut plan, &store, geometry, 0).unwrap();
//! assert_eq!(races.len(), 1);
//! assert_eq!(races[0].kind, RaceKind::WriteWrite);
//! assert_eq!(races[0].addr, geometry.addr_of(PageId(3), 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod first;
mod interval;
mod report;
mod stats;
pub mod trace;

pub use detector::{
    BitmapStore, CheckEntry, CheckList, DetectError, DetectionPlan, EpochArena, EpochDetector,
    OverlapStrategy, PairClass, PairEnumeration, AUTO_OVERLAP_CUTOVER,
};
pub use first::filter_first_races;
pub use interval::{make_interval, Interval};
pub use report::{RaceKind, RaceLog, RaceReport};
pub use stats::DetectorStats;
