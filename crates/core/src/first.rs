//! "First race" filtering (paper §6.4).
//!
//! Adve's accuracy discussion distinguishes *all* data races from *first*
//! data races — those not affected or caused by any prior race.  The paper
//! observes that barriers are semantically releases to the master followed
//! by releases to everyone, so any race in a prior barrier epoch affects all
//! races in later epochs: **all first races occur in the same (earliest)
//! barrier epoch**.  Within that epoch a race is first when no other race's
//! intervals happen-before-1 its own.  The paper calls implementing this
//! check "a trivial extension"; here it is.

use std::collections::HashMap;

use cvm_vclock::{IntervalId, IntervalStamp};

use crate::RaceReport;

/// Filters `reports` down to first races.
///
/// `stamps` must contain the stamp of every interval named by the reports
/// (the barrier master has all of them — they arrived with the epoch's
/// consistency information).  Reports naming unknown intervals are treated
/// conservatively as first races and retained.
pub fn filter_first_races(
    reports: &[RaceReport],
    stamps: &HashMap<IntervalId, IntervalStamp>,
) -> Vec<RaceReport> {
    if reports.is_empty() {
        return Vec::new();
    }
    // Rule 1: only the earliest epoch containing any race can hold first
    // races.
    let first_epoch = reports.iter().map(|r| r.epoch).min().expect("non-empty");
    let in_epoch: Vec<&RaceReport> = reports.iter().filter(|r| r.epoch == first_epoch).collect();

    // Rule 2: within the epoch, drop a race if some *other* race strictly
    // affects it: an interval of the other race happens-before-1 an
    // interval of this one, and not vice versa (mutually-affecting races
    // are both retained, conservatively).
    let affects = |x: &RaceReport, y: &RaceReport| -> bool {
        let pairs = [(x.a, y.a), (x.a, y.b), (x.b, y.a), (x.b, y.b)];
        pairs
            .iter()
            .any(|(from, to)| match (stamps.get(from), stamps.get(to)) {
                (Some(f), Some(t)) => f.happens_before(t),
                _ => false,
            })
    };

    let mut first = Vec::new();
    for (i, r) in in_epoch.iter().enumerate() {
        let dominated = in_epoch
            .iter()
            .enumerate()
            .any(|(j, other)| i != j && affects(other, r) && !affects(r, other));
        if !dominated {
            first.push((*r).clone());
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_page::GAddr;
    use cvm_vclock::{ProcId, VClock};

    use crate::RaceKind;

    fn stamp(proc: u16, index: u32, vc: Vec<u32>) -> IntervalStamp {
        IntervalStamp::new(IntervalId::new(ProcId(proc), index), VClock::from(vc))
    }

    fn report(addr: u64, a: IntervalId, b: IntervalId, epoch: u64) -> RaceReport {
        RaceReport {
            addr: GAddr(addr),
            kind: RaceKind::WriteWrite,
            a,
            b,
            epoch,
        }
    }

    #[test]
    fn later_epochs_are_dropped() {
        let stamps = HashMap::new();
        let a = IntervalId::new(ProcId(0), 1);
        let b = IntervalId::new(ProcId(1), 1);
        let reports = vec![
            report(100, a, b, 2),
            report(200, a, b, 1),
            report(300, a, b, 5),
        ];
        let first = filter_first_races(&reports, &stamps);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].addr, GAddr(200));
    }

    #[test]
    fn affected_race_within_epoch_is_dropped() {
        // Race 1 involves s0^1 and s1^1; race 2 involves s0^2 (which s0^1
        // precedes by program order) and s1^1 again.
        let s01 = stamp(0, 1, vec![1, 0]);
        let s02 = stamp(0, 2, vec![2, 0]);
        let s11 = stamp(1, 1, vec![0, 1]);
        let mut stamps = HashMap::new();
        for s in [&s01, &s02, &s11] {
            stamps.insert(s.id, s.clone());
        }
        let r1 = report(100, s01.id, s11.id, 0);
        let r2 = report(200, s02.id, s11.id, 0);
        let first = filter_first_races(&[r1.clone(), r2], &stamps);
        assert_eq!(first, vec![r1]);
    }

    #[test]
    fn independent_races_are_both_first() {
        let s01 = stamp(0, 1, vec![1, 0, 0]);
        let s11 = stamp(1, 1, vec![0, 1, 0]);
        let s21 = stamp(2, 1, vec![0, 0, 1]);
        let mut stamps = HashMap::new();
        for s in [&s01, &s11, &s21] {
            stamps.insert(s.id, s.clone());
        }
        let r1 = report(100, s01.id, s11.id, 0);
        let r2 = report(200, s11.id, s21.id, 0);
        let first = filter_first_races(&[r1, r2], &stamps);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn unknown_intervals_are_retained() {
        let stamps = HashMap::new();
        let r = report(
            100,
            IntervalId::new(ProcId(0), 1),
            IntervalId::new(ProcId(1), 1),
            0,
        );
        assert_eq!(
            filter_first_races(std::slice::from_ref(&r), &stamps),
            vec![r]
        );
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(filter_first_races(&[], &HashMap::new()).is_empty());
    }
}
