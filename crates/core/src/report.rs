//! Race reports and the cluster-wide race log.

use std::collections::BTreeSet;
use std::fmt;

use cvm_net::wire::{Reader, Wire, WireError};
use cvm_page::{GAddr, SegmentMap};
use cvm_vclock::IntervalId;

/// Kind of conflicting access pair.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum RaceKind {
    /// One interval read the word, the other wrote it.
    ReadWrite,
    /// Both intervals wrote the word.
    WriteWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::ReadWrite => write!(f, "read-write"),
            RaceKind::WriteWrite => write!(f, "write-write"),
        }
    }
}

/// One detected data race: a word accessed by two concurrent intervals,
/// at least one access a write.
///
/// The system "prints the shared segment address for each detected race
/// condition, together with the interval indexes" (§6.1); combined with the
/// allocator's segment map this identifies the exact variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// Address of the racy word.
    pub addr: GAddr,
    /// Conflict kind.
    pub kind: RaceKind,
    /// First involved interval (lower process id).
    pub a: IntervalId,
    /// Second involved interval.
    pub b: IntervalId,
    /// Barrier epoch in which the race was detected (0-based).
    pub epoch: u64,
}

impl RaceReport {
    /// Stable identity of this report: an FNV-1a 64 hash over the
    /// canonical wire encoding (address, kind, both interval ids, epoch —
    /// all little-endian, no padding).
    ///
    /// Because detection output is byte-identical across
    /// `DetectConfig::workers` counts, sync vs. pipelined masters, and
    /// recovery/failover paths, the fingerprint is a run-independent key:
    /// deduplicating reports across seeds or comparing two runs reduces to
    /// comparing `u64` sets.  It is *not* a cryptographic hash — it keys
    /// dedup maps, it does not authenticate anything.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(&self.to_bytes())
    }

    /// Renders the report, symbolizing the address through `map`.
    pub fn render(&self, map: &SegmentMap) -> String {
        format!(
            "DATA RACE ({}): {} at {} between {:?} and {:?} [epoch {}]",
            self.kind,
            map.symbolize(self.addr),
            self.addr,
            self.a,
            self.b,
            self.epoch
        )
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DATA RACE ({}): {} between {:?} and {:?} [epoch {}]",
            self.kind, self.addr, self.a, self.b, self.epoch
        )
    }
}

impl Wire for RaceKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            RaceKind::ReadWrite => 0,
            RaceKind::WriteWrite => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(RaceKind::ReadWrite),
            1 => Ok(RaceKind::WriteWrite),
            tag => Err(WireError::BadTag {
                what: "RaceKind",
                tag,
            }),
        }
    }
    fn wire_size(&self) -> u64 {
        1
    }
}

impl Wire for RaceReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.addr.0.encode(buf);
        self.kind.encode(buf);
        self.a.encode(buf);
        self.b.encode(buf);
        self.epoch.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RaceReport {
            addr: GAddr(u64::decode(r)?),
            kind: RaceKind::decode(r)?,
            a: IntervalId::decode(r)?,
            b: IntervalId::decode(r)?,
            epoch: u64::decode(r)?,
        })
    }
    fn wire_size(&self) -> u64 {
        8 + 1 + 6 + 6 + 8
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms for
/// the canonical byte strings it is fed here.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Accumulated race reports for a whole execution.
#[derive(Clone, Debug, Default)]
pub struct RaceLog {
    reports: Vec<RaceReport>,
}

impl RaceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RaceLog::default()
    }

    /// Appends reports from one epoch.
    pub fn extend(&mut self, reports: impl IntoIterator<Item = RaceReport>) {
        self.reports.extend(reports);
    }

    /// All reports, in detection order.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Number of reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` if no race was detected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Distinct racy addresses, sorted.
    pub fn distinct_addrs(&self) -> Vec<GAddr> {
        let set: BTreeSet<GAddr> = self.reports.iter().map(|r| r.addr).collect();
        set.into_iter().collect()
    }

    /// Reports touching `addr`.
    pub fn at(&self, addr: GAddr) -> Vec<&RaceReport> {
        self.reports.iter().filter(|r| r.addr == addr).collect()
    }

    /// Returns `true` if any report has the given kind.
    pub fn has_kind(&self, kind: RaceKind) -> bool {
        self.reports.iter().any(|r| r.kind == kind)
    }

    /// Fingerprints of all reports, in detection order (duplicates kept).
    pub fn fingerprints(&self) -> Vec<u64> {
        self.reports.iter().map(RaceReport::fingerprint).collect()
    }

    /// The deduplicated fingerprint set: the run's race identity,
    /// independent of detection order and report multiplicity.
    pub fn distinct_fingerprints(&self) -> BTreeSet<u64> {
        self.reports.iter().map(RaceReport::fingerprint).collect()
    }

    /// Per-address summary: `(addr, read-write reports, write-write
    /// reports)`, sorted by address — the condensed view a user reads
    /// first (one racy variable usually generates many interval pairs).
    pub fn summary(&self) -> Vec<(GAddr, usize, usize)> {
        let mut map: std::collections::BTreeMap<GAddr, (usize, usize)> =
            std::collections::BTreeMap::new();
        for r in &self.reports {
            let e = map.entry(r.addr).or_default();
            match r.kind {
                RaceKind::ReadWrite => e.0 += 1,
                RaceKind::WriteWrite => e.1 += 1,
            }
        }
        map.into_iter().map(|(a, (rw, ww))| (a, rw, ww)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvm_page::{Geometry, SharedAlloc};
    use cvm_vclock::ProcId;

    fn report(addr: u64, kind: RaceKind) -> RaceReport {
        RaceReport {
            addr: GAddr(addr),
            kind,
            a: IntervalId::new(ProcId(0), 1),
            b: IntervalId::new(ProcId(1), 2),
            epoch: 3,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let r = report(cvm_page::SHARED_BASE + 64, RaceKind::WriteWrite);
        let bytes = r.to_bytes();
        assert_eq!(bytes.len() as u64, r.wire_size());
        assert_eq!(RaceReport::from_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn render_symbolizes_via_segment_map() {
        let mut alloc = SharedAlloc::new(Geometry::default(), 1 << 16);
        let bound = alloc.alloc("MinTourLen", 8).unwrap();
        let map = alloc.into_map();
        let r = report(bound.0, RaceKind::ReadWrite);
        let text = r.render(&map);
        assert!(text.contains("MinTourLen"), "got: {text}");
        assert!(text.contains("read-write"));
        assert!(text.contains("s0^1"));
    }

    #[test]
    fn log_queries() {
        let mut log = RaceLog::new();
        assert!(log.is_empty());
        log.extend([
            report(100, RaceKind::ReadWrite),
            report(100, RaceKind::WriteWrite),
            report(200, RaceKind::ReadWrite),
        ]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.distinct_addrs(), vec![GAddr(100), GAddr(200)]);
        assert_eq!(log.at(GAddr(100)).len(), 2);
        assert!(log.has_kind(RaceKind::WriteWrite));
    }

    #[test]
    fn display_mentions_kind_and_intervals() {
        let r = report(64, RaceKind::WriteWrite);
        let s = r.to_string();
        assert!(s.contains("write-write"));
        assert!(s.contains("s0^1") && s.contains("s1^2"));
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let r = report(100, RaceKind::ReadWrite);
        // Deterministic: same report, same hash, every call.
        assert_eq!(r.fingerprint(), r.fingerprint());
        // Pinned value: the canonical encoding (and hence the fingerprint)
        // is part of the service's dedup contract — changing either is a
        // breaking change and must show up in review.
        assert_eq!(r.fingerprint(), fnv1a64(&r.to_bytes()));
        // Every field participates.
        for other in [
            report(101, RaceKind::ReadWrite),
            report(100, RaceKind::WriteWrite),
            RaceReport {
                a: IntervalId::new(ProcId(0), 7),
                ..report(100, RaceKind::ReadWrite)
            },
            RaceReport {
                epoch: 9,
                ..report(100, RaceKind::ReadWrite)
            },
        ] {
            assert_ne!(r.fingerprint(), other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn log_fingerprints_dedup() {
        let mut log = RaceLog::new();
        log.extend([
            report(100, RaceKind::ReadWrite),
            report(100, RaceKind::ReadWrite), // Duplicate report.
            report(200, RaceKind::WriteWrite),
        ]);
        assert_eq!(log.fingerprints().len(), 3);
        let distinct = log.distinct_fingerprints();
        assert_eq!(distinct.len(), 2);
        assert!(distinct.contains(&report(200, RaceKind::WriteWrite).fingerprint()));
    }
}
