//! Interval records: the unit of consistency information in LRC.

use cvm_net::wire::{Reader, Wire, WireError};
use cvm_page::PageId;
use cvm_vclock::{IntervalId, IntervalStamp, ProcId, VClock};

/// One LRC interval's consistency record.
///
/// CVM already shipped interval structures holding a version vector and
/// *write notices* (pages written during the interval) on every
/// synchronization message.  The race detector's modification (ii) adds
/// *read notices* — the analogous list of pages read (paper §4, step 1).
///
/// Notice lists are kept sorted and deduplicated; they are page-granularity
/// summaries, while the word-granularity bitmaps stay home with the
/// creating process until the barrier master requests them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Identity and vector timestamp.
    pub stamp: IntervalStamp,
    /// Pages written during the interval, sorted.
    pub write_notices: Vec<PageId>,
    /// Pages read during the interval, sorted (the paper's addition).
    pub read_notices: Vec<PageId>,
}

impl Interval {
    /// Creates an interval record, sorting and deduplicating the notices.
    pub fn new(
        stamp: IntervalStamp,
        mut write_notices: Vec<PageId>,
        mut read_notices: Vec<PageId>,
    ) -> Self {
        write_notices.sort_unstable();
        write_notices.dedup();
        read_notices.sort_unstable();
        read_notices.dedup();
        Interval {
            stamp,
            write_notices,
            read_notices,
        }
    }

    /// The interval's identity.
    #[inline]
    pub fn id(&self) -> IntervalId {
        self.stamp.id
    }

    /// The creating process.
    #[inline]
    pub fn proc(&self) -> ProcId {
        self.stamp.id.proc
    }

    /// Returns `true` if the interval accessed no shared pages.
    pub fn is_quiet(&self) -> bool {
        self.write_notices.is_empty() && self.read_notices.is_empty()
    }

    /// All pages touched (read or written), sorted and deduplicated.
    pub fn pages_touched(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .write_notices
            .iter()
            .chain(&self.read_notices)
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Encoded size of the read notices alone.
    ///
    /// Table 3's "Msg Ohead" column is defined as the bandwidth consumed by
    /// read notices; the DSM uses this to attribute bytes to
    /// [`cvm_net::TrafficClass::ReadNotice`].
    pub fn read_notice_bytes(&self) -> u64 {
        4 + self.read_notices.len() as u64 * 4
    }

    /// Read-notice bytes attributed to the detector's bandwidth overhead:
    /// zero for an empty list (an unmodified CVM record carries no
    /// read-notice payload; the 4-byte empty count is framing).
    pub fn read_notice_attr_bytes(&self) -> u64 {
        if self.read_notices.is_empty() {
            0
        } else {
            self.read_notice_bytes()
        }
    }
}

impl Wire for Interval {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.stamp.encode(buf);
        self.write_notices.encode(buf);
        self.read_notices.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let stamp = IntervalStamp::decode(r)?;
        let write_notices = Vec::<PageId>::decode(r)?;
        let read_notices = Vec::<PageId>::decode(r)?;
        Ok(Interval {
            stamp,
            write_notices,
            read_notices,
        })
    }
    fn wire_size(&self) -> u64 {
        self.stamp.wire_size() + 4 + self.write_notices.len() as u64 * 4 + self.read_notice_bytes()
    }
}

/// Convenience constructor used pervasively in tests: builds an interval
/// from raw parts.
///
/// `vc` must satisfy `vc[proc] == index`.
pub fn make_interval(
    proc: u16,
    index: u32,
    vc: Vec<u32>,
    writes: &[u32],
    reads: &[u32],
) -> Interval {
    Interval::new(
        IntervalStamp::new(IntervalId::new(ProcId(proc), index), VClock::from(vc)),
        writes.iter().map(|&p| PageId(p)).collect(),
        reads.iter().map(|&p| PageId(p)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notices_are_sorted_and_deduped() {
        let i = make_interval(0, 1, vec![1, 0], &[5, 2, 5, 1], &[9, 9, 0]);
        assert_eq!(i.write_notices, vec![PageId(1), PageId(2), PageId(5)]);
        assert_eq!(i.read_notices, vec![PageId(0), PageId(9)]);
    }

    #[test]
    fn pages_touched_unions_notices() {
        let i = make_interval(0, 1, vec![1, 0], &[3, 1], &[2, 3]);
        assert_eq!(i.pages_touched(), vec![PageId(1), PageId(2), PageId(3)]);
    }

    #[test]
    fn quiet_interval() {
        let i = make_interval(1, 2, vec![0, 2], &[], &[]);
        assert!(i.is_quiet());
        assert_eq!(i.pages_touched(), Vec::<PageId>::new());
    }

    #[test]
    fn wire_roundtrip_and_size() {
        let i = make_interval(1, 3, vec![2, 3, 0], &[1, 2], &[7]);
        let bytes = i.to_bytes();
        assert_eq!(bytes.len() as u64, i.wire_size());
        assert_eq!(Interval::from_bytes(&bytes).unwrap(), i);
    }

    #[test]
    fn read_notice_bytes_scale_with_list() {
        let none = make_interval(0, 1, vec![1], &[], &[]);
        let five = make_interval(0, 1, vec![1], &[], &[1, 2, 3, 4, 5]);
        assert_eq!(none.read_notice_bytes(), 4);
        assert_eq!(five.read_notice_bytes(), 24);
    }
}
