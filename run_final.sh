#!/bin/bash
set -x
cd /root/repo
# 1. Full test suite.
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
# 2. Criterion micro-benchmarks + the full evaluation harness.
{
  echo "================ CRITERION MICRO-BENCHMARKS ================"
  cargo bench --workspace 2>&1
  echo
  echo "================ TABLE 2 ================"
  cargo run --release -p cvm-bench --bin table2 2>/dev/null
  echo
  echo "================ TABLE 1 ================"
  cargo run --release -p cvm-bench --bin table1 2>/dev/null
  echo
  echo "================ TABLE 3 ================"
  cargo run --release -p cvm-bench --bin table3 2>/dev/null
  echo
  echo "================ FIGURE 3 ================"
  cargo run --release -p cvm-bench --bin fig3 2>/dev/null
  echo
  echo "================ FIGURE 4 ================"
  cargo run --release -p cvm-bench --bin fig4 2>/dev/null
  echo
  echo "================ FIGURE 5 ================"
  cargo run --release -p cvm-bench --bin fig5 2>/dev/null
  echo
  echo "================ ABLATIONS ================"
  cargo run --release -p cvm-bench --bin ablation 2>/dev/null
} 2>&1 | tee /root/repo/bench_output.txt
echo ALL_DONE
